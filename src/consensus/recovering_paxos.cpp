#include "consensus/recovering_paxos.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

namespace {
constexpr char kStateKey[] = "paxos_acceptor_state";
}

RecoveringPaxosConsensus::RecoveringPaxosConsensus(
    ProcessId self, GroupParams group, ConsensusHost& host,
    const fd::OmegaView& omega, common::StableStorage& storage)
    : Consensus(self, group, host), omega_(omega), storage_(storage) {
  ZDC_ASSERT_MSG(group.majority_resilient(), "Paxos requires f < n/2");
  recover_from_storage();
}

void RecoveringPaxosConsensus::recover_from_storage() {
  const auto bytes = storage_.get(kStateKey);
  if (!bytes.has_value()) return;
  common::Decoder dec(*bytes);
  const Ballot promised = dec.get_u64();
  const Ballot accepted_ballot = dec.get_u64();
  Value accepted_value = dec.get_string();
  if (!dec.done()) {
    ZDC_LOG(kError, "rec-paxos") << "corrupt acceptor state, starting fresh";
    return;
  }
  promised_ = promised;
  accepted_ballot_ = accepted_ballot;
  accepted_value_ = std::move(accepted_value);
  note_ballot_seen(promised_);
  if (accepted_ballot_ != kNoBallot) note_ballot_seen(accepted_ballot_);
  ZDC_LOG(kDebug, "rec-paxos")
      << "p" << self_ << " recovered promised=" << promised_;
}

void RecoveringPaxosConsensus::persist_acceptor_state() {
  common::Encoder enc;
  enc.put_u64(promised_);
  enc.put_u64(accepted_ballot_);
  enc.put_string(accepted_value_);
  storage_.put(kStateKey, enc.take());
}

RecoveringPaxosConsensus::Ballot RecoveringPaxosConsensus::next_owned_ballot(
    Ballot floor) const {
  const Ballot n = group_.n;
  const Ballot base = (floor / n) * n + self_;
  return base >= floor ? base : base + n;
}

void RecoveringPaxosConsensus::start(Value proposal) {
  my_value_ = std::move(proposal);
  note_round_started();
  was_leader_ = omega_.leader() == self_;
  if (was_leader_) maybe_lead();
}

void RecoveringPaxosConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  const bool leading = omega_.leader() == self_;
  if (leading && !was_leader_) {
    if (active_ballot_ != kNoBallot) note_ballot_seen(active_ballot_ + 1);
    maybe_lead();
  }
  was_leader_ = leading;
}

void RecoveringPaxosConsensus::maybe_lead() {
  if (!my_value_.has_value() || decided()) return;
  start_ballot(next_owned_ballot(std::max(max_ballot_seen_, promised_)));
}

void RecoveringPaxosConsensus::start_ballot(Ballot b) {
  ZDC_ASSERT(ballot_owner(b) == self_);
  active_ballot_ = b;
  p2a_sent_ = false;
  promises_.clear();
  note_ballot_seen(b);
  if (b == 0) {
    send_p2a(*my_value_);
    return;
  }
  common::Encoder enc;
  enc.put_u8(kP1aTag);
  enc.put_u64(b);
  broadcast_counted(enc.take());
}

void RecoveringPaxosConsensus::send_p2a(const Value& v) {
  if (p2a_sent_) return;
  p2a_sent_ = true;
  common::Encoder enc;
  enc.put_u8(kP2aTag);
  enc.put_u64(active_ballot_);
  enc.put_string(v);
  broadcast_counted(enc.take());
}

void RecoveringPaxosConsensus::note_ballot_seen(Ballot b) {
  if (b != kNoBallot && b > max_ballot_seen_) max_ballot_seen_ = b;
}

void RecoveringPaxosConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                              common::Decoder& dec) {
  switch (tag) {
    case kP1aTag: handle_p1a(from, dec); break;
    case kP1bTag: handle_p1b(from, dec); break;
    case kP2aTag: handle_p2a(from, dec); break;
    case kP2bTag: handle_p2b(from, dec); break;
    case kNackTag: handle_nack(from, dec); break;
    default: note_malformed(); break;
  }
}

void RecoveringPaxosConsensus::handle_p1a(ProcessId from,
                                          common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  if (b >= promised_) {
    promised_ = b;
    persist_acceptor_state();  // write-ahead: promise hits disk before wire
    common::Encoder enc;
    enc.put_u8(kP1bTag);
    enc.put_u64(b);
    enc.put_bool(accepted_ballot_ != kNoBallot);
    enc.put_u64(accepted_ballot_);
    enc.put_string(accepted_value_);
    send_counted(from, enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void RecoveringPaxosConsensus::handle_p1b(ProcessId from,
                                          common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const bool has_accepted = dec.get_bool();
  const Ballot ab = dec.get_u64();
  Value av = dec.get_string();
  if (!dec.done()) return note_malformed();
  if (decided() || b != active_ballot_ || p2a_sent_) return;
  Promise promise;
  if (has_accepted) {
    promise.accepted_ballot = ab;
    promise.accepted_value = std::move(av);
    note_ballot_seen(ab);
  }
  promises_.emplace(from, std::move(promise));
  if (promises_.size() < group_.majority()) return;
  const Promise* best = nullptr;
  for (const auto& [p, pr] : promises_) {
    if (pr.accepted_ballot == kNoBallot) continue;
    if (best == nullptr || pr.accepted_ballot > best->accepted_ballot) {
      best = &pr;
    }
  }
  send_p2a(best != nullptr ? best->accepted_value : *my_value_);
}

void RecoveringPaxosConsensus::handle_p2a(ProcessId from,
                                          common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  if (b >= promised_) {
    promised_ = b;
    accepted_ballot_ = b;
    accepted_value_ = std::move(v);
    persist_acceptor_state();  // write-ahead: the vote hits disk before 2b
    common::Encoder enc;
    enc.put_u8(kP2bTag);
    enc.put_u64(b);
    enc.put_string(accepted_value_);
    broadcast_counted(enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void RecoveringPaxosConsensus::handle_p2b(ProcessId from,
                                          common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  auto [it, inserted] = p2b_values_.emplace(b, v);
  ZDC_ASSERT_MSG(it->second == v, "two values accepted under one ballot");
  p2b_votes_[b].insert(from);
  if (p2b_votes_[b].size() >= group_.majority()) {
    decide_quietly(it->second, b == 0 ? 2 : 4);
  }
}

void RecoveringPaxosConsensus::handle_nack(ProcessId from,
                                           common::Decoder& dec) {
  (void)from;
  const Ballot b = dec.get_u64();
  const Ballot promised = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(promised);
  if (b == active_ballot_ && omega_.leader() == self_ && !decided()) {
    start_ballot(next_owned_ballot(promised + 1));
  }
}

}  // namespace zdc::consensus
