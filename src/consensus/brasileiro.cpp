#include "consensus/brasileiro.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

/// Frames every inner-module message as [kInnerTag][bytes] on the outer
/// channel and maps the inner decision to the outer one.
class BrasileiroConsensus::InnerHost final : public ConsensusHost {
 public:
  explicit InnerHost(BrasileiroConsensus& outer) : outer_(outer) {}

  void send(ProcessId to, std::string bytes) override {
    outer_.send_counted(to, wrap(std::move(bytes)));
  }

  void broadcast(std::string bytes) override {
    outer_.broadcast_counted(wrap(std::move(bytes)));
  }

  void deliver_decision(const Value& v) override {
    // One preliminary step plus whatever the underlying module needed. The
    // DECIDE flood lets processes that decided in step one unblock laggards,
    // and vice versa.
    const std::uint32_t inner_steps =
        outer_.inner_ != nullptr ? outer_.inner_->decision_steps() : 2;
    outer_.decide_from_round(v, 1 + inner_steps);
  }

 private:
  static std::string wrap(std::string bytes) {
    common::Encoder enc;
    enc.put_u8(kInnerTag);
    enc.put_raw(bytes);
    return enc.take();
  }

  BrasileiroConsensus& outer_;
};

BrasileiroConsensus::BrasileiroConsensus(ProcessId self, GroupParams group,
                                         ConsensusHost& host,
                                         ConsensusFactory underlying)
    : Consensus(self, group, host), underlying_factory_(std::move(underlying)) {
  ZDC_ASSERT_MSG(group.one_step_resilient(),
                 "one-step voting requires f < n/3");
}

BrasileiroConsensus::~BrasileiroConsensus() = default;

void BrasileiroConsensus::start(Value proposal) {
  proposal_ = std::move(proposal);
  note_round_started();
  common::Encoder enc;
  enc.put_u8(kVoteTag);
  enc.put_string(proposal_);
  broadcast_counted(enc.take());
}

void BrasileiroConsensus::on_fd_change() {
  if (inner_ != nullptr && !decided()) inner_->on_fd_change();
}

void BrasileiroConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                         common::Decoder& dec) {
  if (tag == kVoteTag) {
    Value v = dec.get_string();
    if (!dec.done()) return note_malformed();
    if (first_round_closed_) return;  // stale vote, round already evaluated
    votes_.emplace(from, std::move(v));
    if (votes_.size() >= group_.quorum()) evaluate_first_round();
    return;
  }
  if (tag == kInnerTag) {
    std::string inner_bytes = dec.get_rest();
    if (inner_ != nullptr) {
      inner_->on_message(from, inner_bytes);
    } else {
      // The sender already fell through to its underlying module; keep the
      // message until our own first round closes.
      inner_buffer_.emplace_back(from, std::move(inner_bytes));
    }
    return;
  }
  note_malformed();
}

void BrasileiroConsensus::evaluate_first_round() {
  // Evaluated exactly once, at the first moment n−f votes are present — the
  // same commit point as the pseudo-code's single wait statement.
  first_round_closed_ = true;
  std::map<Value, std::uint32_t> counts;
  for (const auto& [from, v] : votes_) ++counts[v];

  for (const auto& [v, c] : counts) {
    if (c >= group_.quorum()) {
      decide_from_round(v, 1);
      return;
    }
  }
  // No decision: propose the n−2f-frequent value if one exists (unique when
  // some process decided, which is what transfers agreement to the underlying
  // module), else the own proposal.
  Value inner_proposal = proposal_;
  for (const auto& [v, c] : counts) {
    if (c >= group_.echo_threshold()) {
      inner_proposal = v;
      break;
    }
  }
  start_inner(std::move(inner_proposal));
}

void BrasileiroConsensus::set_frame_checksums(bool on) {
  Consensus::set_frame_checksums(on);
  if (inner_ != nullptr) inner_->set_frame_checksums(on);
}

void BrasileiroConsensus::start_inner(Value proposal) {
  ZDC_ASSERT(inner_ == nullptr);
  inner_host_ = std::make_unique<InnerHost>(*this);
  inner_ = underlying_factory_(self_, group_, *inner_host_);
  inner_->set_frame_checksums(frame_checksums());
  inner_->propose(std::move(proposal));
  auto buffered = std::move(inner_buffer_);
  inner_buffer_.clear();
  for (auto& [from, bytes] : buffered) {
    if (decided()) break;
    inner_->on_message(from, bytes);
  }
}

}  // namespace zdc::consensus
