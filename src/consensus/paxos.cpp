#include "consensus/paxos.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

PaxosConsensus::PaxosConsensus(ProcessId self, GroupParams group,
                               ConsensusHost& host, const fd::OmegaView& omega,
                               Mutations mutations)
    : Consensus(self, group, host), omega_(omega), mutations_(mutations) {
  ZDC_ASSERT_MSG(group.majority_resilient(), "Paxos requires f < n/2");
}

PaxosConsensus::Ballot PaxosConsensus::next_owned_ballot(Ballot floor) const {
  // Smallest b >= floor with b mod n == self.
  const Ballot n = group_.n;
  const Ballot base = (floor / n) * n + self_;
  return base >= floor ? base : base + n;
}

void PaxosConsensus::start(Value proposal) {
  my_value_ = std::move(proposal);
  note_round_started();
  was_leader_ = omega_.leader() == self_;
  if (was_leader_) maybe_lead();
}

void PaxosConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  const bool leading = omega_.leader() == self_;
  if (leading && !was_leader_) {
    // Becoming-leader edge: drive a fresh ballot. Abandoning a still-running
    // own ballot is safe — the higher ballot supersedes it.
    if (active_ballot_ != kNoBallot) note_ballot_seen(active_ballot_ + 1);
    maybe_lead();
  }
  was_leader_ = leading;
}

void PaxosConsensus::maybe_lead() {
  if (!my_value_.has_value() || decided()) return;
  start_ballot(next_owned_ballot(max_ballot_seen_));
}

void PaxosConsensus::start_ballot(Ballot b) {
  ZDC_ASSERT(ballot_owner(b) == self_);
  active_ballot_ = b;
  p2a_sent_ = false;
  promises_.clear();
  note_ballot_seen(b);
  if (b == 0) {
    // Ballot 0 is the globally lowest ballot: no acceptor can have accepted
    // anything in a lower one, so any value is safe and phase 1 is skipped.
    // This is what makes Paxos zero-degrading (2 steps in stable runs).
    send_p2a(*my_value_);
    return;
  }
  common::Encoder enc;
  enc.put_u8(kP1aTag);
  enc.put_u64(b);
  broadcast_counted(enc.take());
}

void PaxosConsensus::send_p2a(const Value& v) {
  if (p2a_sent_) return;
  p2a_sent_ = true;
  common::Encoder enc;
  enc.put_u8(kP2aTag);
  enc.put_u64(active_ballot_);
  enc.put_string(v);
  broadcast_counted(enc.take());
}

void PaxosConsensus::note_ballot_seen(Ballot b) {
  if (b != kNoBallot && b > max_ballot_seen_) max_ballot_seen_ = b;
}

void PaxosConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                    common::Decoder& dec) {
  switch (tag) {
    case kP1aTag: handle_p1a(from, dec); break;
    case kP1bTag: handle_p1b(from, dec); break;
    case kP2aTag: handle_p2a(from, dec); break;
    case kP2bTag: handle_p2b(from, dec); break;
    case kNackTag: handle_nack(from, dec); break;
    default: note_malformed(); break;
  }
}

void PaxosConsensus::handle_p1a(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  if (b >= promised_) {
    promised_ = b;
    common::Encoder enc;
    enc.put_u8(kP1bTag);
    enc.put_u64(b);
    enc.put_bool(accepted_ballot_ != kNoBallot);
    enc.put_u64(accepted_ballot_);
    enc.put_string(accepted_value_);
    send_counted(from, enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void PaxosConsensus::handle_p1b(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const bool has_accepted = dec.get_bool();
  const Ballot ab = dec.get_u64();
  Value av = dec.get_string();
  if (!dec.done()) return note_malformed();
  if (b != active_ballot_ || p2a_sent_) return;
  Promise promise;
  if (has_accepted) {
    promise.accepted_ballot = ab;
    promise.accepted_value = std::move(av);
    note_ballot_seen(ab);
  }
  promises_.emplace(from, std::move(promise));
  if (promises_.size() < group_.majority()) return;
  if (mutations_.ignore_accepted) {
    // Seeded mutant: pretend no acceptor reported anything and push our own
    // value — overwrites a possibly-chosen value, which the checker
    // self-tests must catch as an agreement violation.
    send_p2a(*my_value_);
    return;
  }
  // Choose the value accepted under the highest ballot, else free choice.
  const Promise* best = nullptr;
  for (const auto& [p, pr] : promises_) {
    if (pr.accepted_ballot == kNoBallot) continue;
    if (best == nullptr || pr.accepted_ballot > best->accepted_ballot ||
        (pr.accepted_ballot == best->accepted_ballot &&
         pr.accepted_value < best->accepted_value)) {
      best = &pr;
    }
  }
  send_p2a(best != nullptr ? best->accepted_value : *my_value_);
}

void PaxosConsensus::handle_p2a(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  if (b >= promised_) {
    promised_ = b;
    accepted_ballot_ = b;
    accepted_value_ = std::move(v);
    common::Encoder enc;
    enc.put_u8(kP2bTag);
    enc.put_u64(b);
    enc.put_string(accepted_value_);
    broadcast_counted(enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void PaxosConsensus::handle_p2b(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(b);
  auto [it, inserted] = p2b_values_.emplace(b, v);
  ZDC_ASSERT_MSG(it->second == v, "two values accepted under one ballot");
  p2b_votes_[b].insert(from);
  if (p2b_votes_[b].size() >= group_.majority()) {
    // 2 steps on the phase-1-free ballot 0, 4 when a full phase 1 ran.
    decide_quietly(it->second, b == 0 ? 2 : 4);
  }
}

void PaxosConsensus::handle_nack(ProcessId from, common::Decoder& dec) {
  (void)from;
  const Ballot b = dec.get_u64();
  const Ballot promised = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_ballot_seen(promised);
  if (b == active_ballot_ && omega_.leader() == self_ && !decided()) {
    start_ballot(next_owned_ballot(promised + 1));
  }
}

}  // namespace zdc::consensus
