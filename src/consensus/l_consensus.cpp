#include "consensus/l_consensus.h"

#include <algorithm>

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

LConsensus::LConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                       const fd::OmegaView& omega)
    : Consensus(self, group, host), omega_(omega) {
  ZDC_ASSERT_MSG(group.one_step_resilient(), "L-Consensus requires f < n/3");
}

void LConsensus::start(Value proposal) {
  est_ = std::move(proposal);
  round_ = 1;
  enter_round();
  drive();
}

void LConsensus::enter_round() {
  note_round_started();
  ld_ = omega_.leader();
  common::Encoder enc;
  enc.put_u8(kPropTag);
  enc.put_u64(round_);
  enc.put_string(est_);
  enc.put_u32(ld_);
  broadcast_counted(enc.take());
}

void LConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                common::Decoder& dec) {
  if (tag != kPropTag) {
    note_malformed();
    return;
  }
  const Round r = dec.get_u64();
  Prop prop;
  prop.est = dec.get_string();
  prop.ld = dec.get_u32();
  if (!dec.done() || r == 0) {
    note_malformed();
    return;
  }
  if (r < round_) return;  // stale round, already completed locally
  // First message from `from` in round r wins; a correct process sends at most
  // one PROP per round, so duplicates can only come from the network layer.
  props_[r].emplace(from, std::move(prop));
  drive();
}

void LConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  drive();
}

void LConsensus::drive() {
  while (!decided() && try_complete_round()) {
  }
}

bool LConsensus::try_complete_round() {
  const auto it = props_.find(round_);
  if (it == props_.end()) return false;
  const auto& received = it->second;

  // Line 2: wait for round messages from n−f processes.
  if (received.size() < group_.quorum()) return false;

  // Line 3: wait for the leader's message, unless Ω moved on.
  const auto leader_it =
      ld_ == kNoProcess ? received.end() : received.find(ld_);
  const bool have_leader_msg = leader_it != received.end();
  if (!have_leader_msg && ld_ == omega_.leader()) return false;

  // Line 4: n−f PROP(r, v, ld) plus PROP(r, v, *) from ld itself → decide v.
  if (have_leader_msg) {
    const Value& lv = leader_it->second.est;
    std::uint32_t named_with_value = 0;
    for (const auto& [from, prop] : received) {
      if (prop.ld == ld_ && prop.est == lv) ++named_with_value;
    }
    if (named_with_value >= group_.quorum()) {
      decide_from_round(lv, static_cast<std::uint32_t>(round_));
      return true;
    }
  }

  // Line 7: majority of senders name ld as leader and ld's value is known →
  // adopt the leader value.
  bool updated = false;
  if (have_leader_msg) {
    std::uint32_t named = 0;
    for (const auto& [from, prop] : received) {
      if (prop.ld == ld_) ++named;
    }
    if (named > group_.n / 2) {
      est_ = leader_it->second.est;
      updated = true;
    }
  }

  // Line 9: a value proposed by n−2f senders is adopted. If some process
  // decided v this round, v is the unique such value (at most f senders hold
  // a different estimate and f < n−2f); otherwise ties are broken towards the
  // smallest value for determinism.
  if (!updated) {
    std::map<Value, std::uint32_t> counts;
    for (const auto& [from, prop] : received) ++counts[prop.est];
    for (const auto& [v, c] : counts) {
      if (c >= group_.echo_threshold()) {
        est_ = v;
        updated = true;
        break;
      }
    }
  }

  if (!updated) note_wasted_round();

  // Move to the next round; drop the completed round's buffer.
  props_.erase(it);
  ++round_;
  enter_round();
  return true;
}

}  // namespace zdc::consensus
