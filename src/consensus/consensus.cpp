#include "consensus/consensus.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

void ConsensusHost::w_broadcast(std::uint64_t stage, std::string payload) {
  (void)stage;
  (void)payload;
  ZDC_ASSERT_MSG(false,
                 "this host provides no ordering oracle; oracle-based "
                 "protocols need a C-Abcast-style host");
}

Consensus::Consensus(ProcessId self, GroupParams group, ConsensusHost& host)
    : self_(self), group_(group), host_(host) {
  ZDC_ASSERT_MSG(group.n > 0 && group.f < group.n, "invalid group parameters");
  ZDC_ASSERT(self < group.n);
}

void Consensus::propose(Value v) {
  if (proposed_) return;
  proposed_ = true;
  started_ = true;
  start(std::move(v));
  // Replay messages that arrived before this process invoked consensus. The
  // replay happens after start() so round-1 state exists; start() itself may
  // already have decided (e.g. a buffered DECIDE), so re-check each step.
  auto buffered = std::move(pre_propose_buffer_);
  pre_propose_buffer_.clear();
  for (auto& [from, body] : buffered) {
    if (decided()) break;
    dispatch(from, body);
  }
}

void Consensus::on_message(ProcessId from, std::string_view bytes) {
  if (from >= group_.n) {
    note_malformed();
    return;
  }
  std::string_view body = bytes;
  if (frame_checksums_) {
    // Integrity gate: a frame whose seal does not verify was corrupted in
    // flight (or framed by a pre-checksum sender). It is dropped here — a
    // *detectable* drop the reliability layer repairs by retransmission —
    // and never reaches the protocol decoder. The gate runs before the
    // decided() fast-path so the corruption ledger (frames corrupted ==
    // frames dropped, check/invariants.h) stays exact even for frames that
    // arrive after this process stopped caring.
    if (!common::open_frame(bytes, &body)) {
      ++corrupt_frames_dropped_;
      return;
    }
  }
  if (decided() && !serves_after_decide()) return;
  dispatch(from, body);
}

void Consensus::dispatch(ProcessId from, std::string_view bytes) {
  if (decided() && !serves_after_decide()) return;
  common::Decoder dec(bytes);
  const std::uint8_t tag = dec.get_u8();
  if (!dec.ok()) {
    note_malformed();
    return;
  }
  if (tag == kDecideTag) {
    if (decided()) return;  // duplicate floods die here, never re-forwarded
    handle_decide(dec);     // acted on even pre-propose, see header
    return;
  }
  if (!proposed_) {
    pre_propose_buffer_.emplace_back(from, std::string(bytes));
    return;
  }
  handle_message(from, tag, dec);
}

void Consensus::decide_quietly(const Value& v, std::uint32_t steps) {
  finish(v, DecisionPath::kRound, steps);
}

std::string Consensus::encode_decide(const Value& v, std::uint32_t steps) const {
  common::Encoder enc;
  enc.put_u8(kDecideTag);
  enc.put_string(v);
  enc.put_u32(steps);
  return enc.take();
}

void Consensus::handle_decide(common::Decoder& dec) {
  const Value v = dec.get_string();
  const std::uint32_t origin_steps = dec.get_u32();
  if (!dec.done()) {
    note_malformed();
    return;
  }
  // Task T2: forward the decision to everybody else, then decide. Forwarding
  // guarantees no correct process blocks once some process decided, even if
  // the original decider crashed mid-broadcast.
  for (ProcessId j = 0; j < group_.n; ++j) {
    if (j != self_) send_counted(j, encode_decide(v, origin_steps));
  }
  finish(v, DecisionPath::kForwarded, origin_steps + 1);
}

void Consensus::decide_from_round(const Value& v, std::uint32_t steps) {
  if (decided()) return;
  broadcast_counted(encode_decide(v, steps));
  finish(v, DecisionPath::kRound, steps);
}

void Consensus::finish(const Value& v, DecisionPath path, std::uint32_t steps) {
  if (decided()) return;
  decision_ = v;
  path_ = path;
  decision_steps_ = steps;
  ++metrics_.decisions;
  ZDC_LOG(kDebug, "consensus") << name() << " p" << self_ << " decided after "
                               << steps << " steps";
  host_.deliver_decision(decision_);
}

std::string Consensus::seal(std::string body) const {
  return frame_checksums_ ? common::seal_frame(std::move(body))
                          : std::move(body);
}

void Consensus::send_counted(ProcessId to, std::string bytes) {
  // Metrics count *protocol* bytes; the 5-byte wire seal added below is
  // transport overhead, kept out so Table-1 byte accounting is unchanged.
  ++metrics_.messages_sent;
  metrics_.bytes_sent += bytes.size();
  host_.send(to, seal(std::move(bytes)));
}

void Consensus::broadcast_counted(std::string bytes) {
  metrics_.messages_sent += group_.n;
  metrics_.bytes_sent += bytes.size() * group_.n;
  host_.broadcast(seal(std::move(bytes)));
}

void Consensus::host_w_broadcast(std::uint64_t stage, std::string payload) {
  ++metrics_.messages_sent;
  metrics_.bytes_sent += payload.size();
  host_.w_broadcast(stage, std::move(payload));
}

}  // namespace zdc::consensus
