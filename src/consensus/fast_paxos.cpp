#include "consensus/fast_paxos.h"

#include <algorithm>

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

FastPaxosConsensus::FastPaxosConsensus(ProcessId self, GroupParams group,
                                       ConsensusHost& host,
                                       const fd::OmegaView& omega)
    : Consensus(self, group, host), omega_(omega) {
  // All quorums are n−f; two fast quorums and a classic quorum share an
  // acceptor iff 3(n−f) − 2n > 0, i.e. n > 3f.
  ZDC_ASSERT_MSG(group.one_step_resilient(),
                 "Fast Paxos with uniform n-f quorums requires f < n/3");
}

void FastPaxosConsensus::start(Value proposal) {
  my_value_ = std::move(proposal);
  note_round_started();
  was_leader_ = omega_.leader() == self_;
  // Fast round 0: vote the own proposal immediately, no coordinator needed.
  if (promised_ == 0 && voted_round_ == kNoRound) {
    cast_vote(0, *my_value_);
  }
}

void FastPaxosConsensus::cast_vote(RoundNo round, const Value& v) {
  voted_round_ = round;
  voted_value_ = v;
  common::Encoder enc;
  enc.put_u8(kVoteTag);
  enc.put_u64(round);
  enc.put_string(v);
  broadcast_counted(enc.take());
}

void FastPaxosConsensus::note_round_seen(RoundNo r) {
  if (r != kNoRound && r > max_round_seen_) max_round_seen_ = r;
}

void FastPaxosConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                        common::Decoder& dec) {
  switch (tag) {
    case kVoteTag: handle_vote(from, dec); break;
    case kP1aTag: handle_p1a(from, dec); break;
    case kP1bTag: handle_p1b(from, dec); break;
    case kP2aTag: handle_p2a(from, dec); break;
    case kNackTag: handle_nack(from, dec); break;
    default: note_malformed(); break;
  }
}

void FastPaxosConsensus::handle_vote(ProcessId from, common::Decoder& dec) {
  const RoundNo round = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_round_seen(round);
  votes_[round].emplace(from, std::move(v));
  check_decision(round);
  if (!decided()) maybe_coordinate();
}

void FastPaxosConsensus::check_decision(RoundNo round) {
  const auto& round_votes = votes_[round];
  if (round_votes.size() < group_.quorum()) return;
  std::map<Value, std::uint32_t> counts;
  for (const auto& [a, v] : round_votes) ++counts[v];
  for (const auto& [v, c] : counts) {
    if (c >= group_.quorum()) {
      // 1 step on the fast path, 3 via coordinated recovery, 2 more per
      // further classic round (1a/1b + 2a/vote).
      //
      // The decision is flooded (task-T2 style) rather than silent: a fast
      // quorum may include a vote that a crashed acceptor delivered to only
      // a subset mid-broadcast, in which case the correct votes alone are
      // one short of n−f at the excluded learners — without the flood they
      // would wait forever (and the coordinator, having decided, would never
      // recover them).
      const std::uint32_t steps =
          round == 0 ? 1 : static_cast<std::uint32_t>(1 + 2 * round);
      decide_from_round(v, steps);
      return;
    }
  }
}

void FastPaxosConsensus::maybe_coordinate() {
  if (!my_value_.has_value() || decided()) return;
  if (omega_.leader() != self_) return;
  if (coordinating_) return;

  // Coordinated recovery: n−f round-0 votes with no value still able to win
  // fast... conservatively, with no unanimity yet. The broadcast votes stand
  // in for 1b replies of round 1.
  const auto it = votes_.find(0);
  if (it == votes_.end() || it->second.size() < group_.quorum()) return;
  std::map<Value, std::uint32_t> counts;
  for (const auto& [a, v] : it->second) ++counts[v];
  for (const auto& [v, c] : counts) {
    if (c >= group_.quorum()) return;  // the fast path is deciding by itself
  }
  if (max_round_seen_ == 0) {
    // First recovery: round 1 needs no explicit phase 1.
    coordinating_ = true;
    active_round_ = 1;
    std::map<ProcessId, std::pair<RoundNo, Value>> quorum;
    for (const auto& [a, v] : it->second) quorum.emplace(a, std::make_pair(0, v));
    send_p2a(1, pick_value(quorum));
  } else {
    start_classic_round(max_round_seen_ + 1);
  }
}

void FastPaxosConsensus::start_classic_round(RoundNo round) {
  coordinating_ = true;
  active_round_ = round;
  p1b_replies_.clear();
  p2a_sent_ = false;
  note_round_seen(round);
  common::Encoder enc;
  enc.put_u8(kP1aTag);
  enc.put_u64(round);
  broadcast_counted(enc.take());
}

Value FastPaxosConsensus::pick_value(
    const std::map<ProcessId, std::pair<RoundNo, Value>>& quorum) const {
  // O4: look at the highest round k voted within the quorum; a value voted
  // >= n−2f times in k is forced (it may have been or may yet be decided in
  // k; uniqueness from n−2f > f); otherwise any value is safe.
  RoundNo k = kNoRound;
  for (const auto& [a, rv] : quorum) {
    if (rv.first != kNoRound && (k == kNoRound || rv.first > k)) k = rv.first;
  }
  if (k == kNoRound) return *my_value_;
  std::map<Value, std::uint32_t> counts;
  for (const auto& [a, rv] : quorum) {
    if (rv.first == k) ++counts[rv.second];
  }
  for (const auto& [v, c] : counts) {
    if (c >= group_.echo_threshold()) return v;
  }
  return *my_value_;
}

void FastPaxosConsensus::send_p2a(RoundNo round, const Value& v) {
  common::Encoder enc;
  enc.put_u8(kP2aTag);
  enc.put_u64(round);
  enc.put_string(v);
  broadcast_counted(enc.take());
}

void FastPaxosConsensus::handle_p1a(ProcessId from, common::Decoder& dec) {
  const RoundNo round = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_round_seen(round);
  if (round > promised_) {
    promised_ = round;
    common::Encoder enc;
    enc.put_u8(kP1bTag);
    enc.put_u64(round);
    enc.put_u64(voted_round_);
    enc.put_string(voted_value_);
    send_counted(from, enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(round);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void FastPaxosConsensus::handle_p1b(ProcessId from, common::Decoder& dec) {
  const RoundNo round = dec.get_u64();
  const RoundNo vrnd = dec.get_u64();
  Value vval = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_round_seen(vrnd);
  if (!coordinating_ || round != active_round_ || p2a_sent_) return;
  p1b_replies_.emplace(from, std::make_pair(vrnd, std::move(vval)));
  if (p1b_replies_.size() < group_.quorum()) return;
  p2a_sent_ = true;
  send_p2a(active_round_, pick_value(p1b_replies_));
}

void FastPaxosConsensus::handle_p2a(ProcessId from, common::Decoder& dec) {
  const RoundNo round = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done()) return note_malformed();
  note_round_seen(round);
  if (round >= promised_ && (voted_round_ == kNoRound || voted_round_ < round)) {
    promised_ = round;
    cast_vote(round, v);
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(round);
    enc.put_u64(promised_);
    send_counted(from, enc.take());
  }
}

void FastPaxosConsensus::handle_nack(ProcessId from, common::Decoder& dec) {
  (void)from;
  const RoundNo round = dec.get_u64();
  const RoundNo promised = dec.get_u64();
  if (!dec.done()) return note_malformed();
  note_round_seen(promised);
  if (coordinating_ && round == active_round_ && omega_.leader() == self_ &&
      !decided()) {
    start_classic_round(std::max(max_round_seen_, promised) + 1);
  }
}

void FastPaxosConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  const bool leading = omega_.leader() == self_;
  if (leading && !was_leader_) {
    // Becoming-leader edge: take over coordination with a fresh round.
    coordinating_ = false;
    if (max_round_seen_ == 0) {
      maybe_coordinate();
    } else {
      start_classic_round(max_round_seen_ + 1);
    }
  }
  was_leader_ = leading;
}

}  // namespace zdc::consensus
