#include "consensus/chandra_toueg.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

CtConsensus::CtConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                         const fd::SuspectView& suspects)
    : Consensus(self, group, host), suspects_(suspects) {
  ZDC_ASSERT_MSG(group.majority_resilient(), "CT consensus requires f < n/2");
}

void CtConsensus::start(Value proposal) {
  est_ = std::move(proposal);
  ts_ = 0;
  round_ = 1;
  enter_round();
  drive();
}

void CtConsensus::enter_round() {
  note_round_started();
  sent_est_ = false;
  sent_vote_ = false;
}

void CtConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                 common::Decoder& dec) {
  const Round r = dec.get_u64();
  switch (tag) {
    case kEstTag: {
      Estimate e;
      e.est = dec.get_string();
      e.ts = dec.get_u64();
      if (!dec.done() || r == 0) return note_malformed();
      estimates_[r].emplace(from, std::move(e));
      break;
    }
    case kProposeTag: {
      Value v = dec.get_string();
      if (!dec.done() || r == 0) return note_malformed();
      // One proposal per round: only the round's coordinator is believed.
      if (from == coordinator(r)) proposals_.emplace(r, std::move(v));
      break;
    }
    case kAckTag: {
      if (!dec.done() || r == 0) return note_malformed();
      ++votes_[r].acks;
      break;
    }
    case kNackTag: {
      if (!dec.done() || r == 0) return note_malformed();
      ++votes_[r].nacks;
      break;
    }
    default:
      return note_malformed();
  }
  drive();
}

void CtConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  drive();
}

void CtConsensus::drive() {
  while (!decided() && step_round()) {
  }
}

bool CtConsensus::step_round() {
  const Round r = round_;
  const ProcessId c = coordinator(r);

  // Phase 1: ship the current estimate to the round's coordinator.
  if (!sent_est_) {
    common::Encoder enc;
    enc.put_u8(kEstTag);
    enc.put_u64(r);
    enc.put_string(est_);
    enc.put_u64(ts_);
    send_counted(c, enc.take());
    sent_est_ = true;
  }

  // Phase 2 (coordinator): propose the highest-timestamp estimate from the
  // first majority collected.
  if (self_ == c && !proposed_round_[r]) {
    const auto& received = estimates_[r];
    if (received.size() < group_.majority()) return false;
    const Estimate* best = nullptr;
    for (const auto& [p, e] : received) {
      if (best == nullptr || e.ts > best->ts) best = &e;
    }
    proposed_round_[r] = true;
    proposal_sent_[r] = best->est;
    common::Encoder enc;
    enc.put_u8(kProposeTag);
    enc.put_u64(r);
    enc.put_string(best->est);
    broadcast_counted(enc.take());
  }

  // Phase 3: adopt-and-ack the proposal, or nack once the coordinator is
  // suspected (the ◇S escape hatch).
  if (!sent_vote_) {
    const auto prop_it = proposals_.find(r);
    if (prop_it != proposals_.end()) {
      est_ = prop_it->second;
      ts_ = r;
      common::Encoder enc;
      enc.put_u8(kAckTag);
      enc.put_u64(r);
      send_counted(c, enc.take());
      sent_vote_ = true;
    } else if (suspects_.suspects(c)) {
      common::Encoder enc;
      enc.put_u8(kNackTag);
      enc.put_u64(r);
      send_counted(c, enc.take());
      sent_vote_ = true;
    } else {
      return false;  // wait for the proposal or a suspicion
    }
  }

  // Phase 4 (coordinator): majority of ACKs decides; a majority of replies
  // containing a NACK aborts the round.
  if (self_ == c && !round_resolved_[r]) {
    const Votes& v = votes_[r];
    if (v.acks >= group_.majority()) {
      round_resolved_[r] = true;
      // 3 communication steps: est -> propose -> ack.
      decide_from_round(proposal_sent_[r], 3);
      return true;
    }
    if (v.acks + v.nacks >= group_.majority() && v.nacks > 0) {
      round_resolved_[r] = true;
    } else {
      return false;
    }
  }

  // Advance. Old-round coordinator state stays: late ACKs may still arrive
  // and decide the old round, which is safe (the value was locked).
  ++round_;
  enter_round();
  return true;
}

}  // namespace zdc::consensus
