// P-Consensus — Algorithm 2 of the paper (Sec. 6).
//
// ◇P-based, one-step AND zero-degrading. It escapes the Theorem-1 lower bound
// by using a failure detector strictly stronger than Ω: when a process cannot
// decide in the first communication step it falls back to a *consistent
// quorum* Q — the first n−f non-suspected processes — and in a stable run
// every process computes the same Q, receives the same messages from it, and
// applies the same deterministic pick, so round 2 starts with equal estimates
// and decides (the Fast-Paxos-style coordinated recovery the paper credits to
// Lamport).
//
// Per round r:
//    1: broadcast PROP(r, est)
//    2: wait for PROP(r,*) from n−f processes
//    3: if PROP(r,v) from n−f processes → DECIDE v
//    5: Q ← the first n−f processes not in ◇P.suspected  (frozen per round)
//    6: wait for PROP(r,*) from every p ∈ Q \ ◇P.suspected  (suspected re-read)
//    7: Qlist ← values received from members of Q
//    8: if |Qlist| = n−f:                        (complete quorum)
//    9:    if some v occurs ≥ n−2f times in Qlist → est ← v
//   12:    else est ← estimate of the smallest-index member of Q
//   13: else                                      (incomplete quorum)
//   14:    if some v is a strict majority of all values received → est ← v
//
// Eager-evaluation safety: the decide predicate (n−f equal values) and the
// n−2f/majority picks are all monotone or unique under the f < n/3 bound:
// 2(n−2f) > n−f, so at most one value reaches n−2f within a complete Qlist,
// and if some process decided v this round at most f senders hold a different
// estimate, forcing every pick to v exactly as in the paper's Lemma 4.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class PConsensus final : public Consensus {
 public:
  /// Seeded protocol mutations for checker self-tests (src/check): each knob
  /// re-introduces a bug the safety argument explicitly rules out, so a
  /// schedule-space checker that cannot find a counterexample against it is
  /// itself broken. Never set outside tests.
  struct Mutations {
    /// Line 3 decides on *any* value seen among the n−f round messages
    /// instead of requiring n−f identical ones — discards the quorum
    /// intersection that Lemma 4's agreement argument rests on.
    bool skip_one_step_quorum = false;
  };

  /// `suspects` must outlive the protocol instance.
  PConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
             const fd::SuspectView& suspects)
      : PConsensus(self, group, host, suspects, Mutations{}) {}
  PConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
             const fd::SuspectView& suspects, Mutations mutations);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "P-Consensus"; }
  [[nodiscard]] Round current_round() const { return round_; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kPropTag = 1;

  void enter_round();
  void drive();
  bool try_complete_round();

  const fd::SuspectView& suspects_;
  const Mutations mutations_;
  Round round_ = 0;
  Value est_;
  /// Q of the current round, frozen at the first evaluation after the n−f
  /// wait was satisfied without a decision (pseudo-code line 5).
  std::optional<std::vector<ProcessId>> quorum_q_;
  std::map<Round, std::map<ProcessId, Value>> props_;
};

}  // namespace zdc::consensus
