// L-Consensus — Algorithm 1 of the paper (Sec. 5).
//
// Ω-based, zero-degrading; one-step only in stable runs (the paper's Theorem 1
// forbids unconditional one-step for leader-based protocols). Per round:
//
//   ld ← Ω.leader
//   1: broadcast PROP(r, est, ld)
//   2: wait for PROP(r,*,*) from n−f processes
//   3: wait for PROP(r,*,*) from ld  ∨  ld != Ω.leader
//   4: if PROP(r,v,ld) from n−f processes ∧ PROP(r,v,*) from ld → DECIDE v
//   7: elif PROP(r,*,ld) from >n/2 ∧ PROP(r,v,*) from ld        → est ← v
//   9: elif PROP(r,v,*) from n−2f processes                      → est ← v
//
// Event-driven adaptation: the three conditions are evaluated whenever a
// message arrives or the failure detector output changes, over the full set of
// round-r messages received so far (possibly more than n−f).
//
// Safety over supersets: if some process decides v in round r then at most f
// round-r senders have est != v, and f < n−2f (from f < n/3), so v is the
// *unique* value that can reach the n−2f threshold of line 9 no matter how
// many messages a process has collected — the agreement proof (Lemma 2)
// carries over verbatim. When no decision happened in a round, two values can
// both reach n−2f over a superset; we break the tie deterministically
// (smallest value), which is harmless since agreement only constrains rounds
// in which someone decided.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class LConsensus final : public Consensus {
 public:
  /// `omega` must outlive the protocol instance.
  LConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
             const fd::OmegaView& omega);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "L-Consensus"; }

  /// Round this process is currently executing (1-based); for tests.
  [[nodiscard]] Round current_round() const { return round_; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kPropTag = 1;

  struct Prop {
    Value est;
    ProcessId ld = kNoProcess;
  };

  void enter_round();
  /// Runs rounds to completion while their wait conditions hold; stops when
  /// blocked or decided.
  void drive();
  /// Returns true if round `round_` completed (decision or round advance).
  bool try_complete_round();

  const fd::OmegaView& omega_;
  Round round_ = 0;
  Value est_;
  ProcessId ld_ = kNoProcess;  ///< leader recorded when the round started
  /// Round → sender → first PROP received from that sender in that round.
  std::map<Round, std::map<ProcessId, Prop>> props_;
};

}  // namespace zdc::consensus
