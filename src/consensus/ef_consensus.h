// Generalized (e, f) one-step consensus — Lamport's refinement of Brasileiro
// discussed in the paper's Sec. 2 ("Lower bounds for asynchronous
// consensus"): distinguish the number of failures the *fast path* rides out
// (e) from the number progress tolerates (f).
//
//   fast decision:  n − e equal first-round values decide in one step
//   fallback:       a value seen >= n − e − f times among the first n − f
//                   first-round values is proposed to the underlying
//                   consensus module (unique: n > 2e + f), else the own value
//   resilience:     n > max(2f, 2e + f)
//
// e = f recovers Brasileiro's f < n/3; maximizing f gives f < n/2 with
// e <= n/4 — a fast path that survives fewer failures but a protocol that
// tolerates a minority crash like Paxos.
//
// Engineering note: when e < f the fast path needs n − e > n − f messages, so
// the protocol commits its fallback proposal at the n−f-th message and keeps
// watching; a *late* fast decision stays safe because n − e equal values
// force every fallback proposal to that same value (n − e − f > e), hence
// the underlying module can only decide it too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "consensus/consensus.h"

namespace zdc::consensus {

class EfConsensus final : public Consensus {
 public:
  /// `group.f` is the progress bound f; `e` is the fast-path bound.
  EfConsensus(ProcessId self, GroupParams group, std::uint32_t e,
              ConsensusHost& host, ConsensusFactory underlying);
  ~EfConsensus() override;

  void on_fd_change() override;

  /// Propagates the toggle to the tunneled inner module (which seals its own
  /// frames inside the kInnerTag envelope); see Consensus::set_frame_checksums.
  void set_frame_checksums(bool on) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t fast_threshold() const { return group_.n - e_; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kVoteTag = 1;
  static constexpr std::uint8_t kInnerTag = 2;

  class InnerHost;

  void check_fast_decision();
  void maybe_commit_fallback();
  void start_inner(Value proposal);

  const std::uint32_t e_;
  ConsensusFactory underlying_factory_;
  Value proposal_;
  std::map<ProcessId, Value> votes_;
  std::map<Value, std::uint32_t> counts_;
  bool fallback_committed_ = false;
  std::unique_ptr<InnerHost> inner_host_;
  std::unique_ptr<Consensus> inner_;
  std::vector<std::pair<ProcessId, std::string>> inner_buffer_;
};

}  // namespace zdc::consensus
