// Single-decree Paxos (the Synod protocol, Lamport 1998) — the classic
// baseline the paper compares against (Table 1, Figure 3).
//
// All three roles live in every process. Ballot b is owned by process b mod n;
// the leader output by Ω drives who proposes. Ballot 0 needs no phase 1 (no
// lower ballot can exist), which gives the 2-communication-step stable-run
// decision the paper attributes to Paxos — the protocol is zero-degrading but
// not one-step.
//
// Liveness without timers: channels are reliable, so the only way a ballot
// stalls is a crashed proposer (Ω then elects a new leader, which starts a
// higher ballot on its becoming-leader edge) or a higher promised ballot
// (acceptors answer with explicit NACKs carrying the promised ballot, and a
// still-leading proposer restarts with a higher owned ballot).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::consensus {

class PaxosConsensus final : public Consensus {
 public:
  /// Seeded protocol mutations for checker self-tests (src/check): each knob
  /// re-introduces a bug the safety argument explicitly rules out, so a
  /// schedule-space checker that cannot find a counterexample against it is
  /// itself broken. Never set outside tests.
  struct Mutations {
    /// Phase 1 ignores the accepted (ballot, value) pairs reported in 1b
    /// promises and always proposes this process's own value — dropping the
    /// "adopt the highest-ballot accepted value" rule that makes chosen
    /// values stable across ballots.
    bool ignore_accepted = false;
  };

  /// Paxos only needs f < n/2; `group.f` expresses the tolerated crash count
  /// but quorums are always strict majorities.
  PaxosConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                 const fd::OmegaView& omega)
      : PaxosConsensus(self, group, host, omega, Mutations{}) {}
  PaxosConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                 const fd::OmegaView& omega, Mutations mutations);

  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "Paxos"; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  using Ballot = std::uint64_t;
  static constexpr Ballot kNoBallot = ~Ballot{0};

  static constexpr std::uint8_t kP1aTag = 1;
  static constexpr std::uint8_t kP1bTag = 2;
  static constexpr std::uint8_t kP2aTag = 3;
  static constexpr std::uint8_t kP2bTag = 4;
  static constexpr std::uint8_t kNackTag = 5;

  [[nodiscard]] ProcessId ballot_owner(Ballot b) const {
    return static_cast<ProcessId>(b % group_.n);
  }
  /// Smallest ballot owned by this process that is strictly above `floor`.
  [[nodiscard]] Ballot next_owned_ballot(Ballot floor) const;

  void maybe_lead();
  void start_ballot(Ballot b);
  void send_p2a(const Value& v);
  void note_ballot_seen(Ballot b);

  void handle_p1a(ProcessId from, common::Decoder& dec);
  void handle_p1b(ProcessId from, common::Decoder& dec);
  void handle_p2a(ProcessId from, common::Decoder& dec);
  void handle_p2b(ProcessId from, common::Decoder& dec);
  void handle_nack(ProcessId from, common::Decoder& dec);

  const fd::OmegaView& omega_;
  const Mutations mutations_;

  // --- proposer state ---
  std::optional<Value> my_value_;
  Ballot active_ballot_ = kNoBallot;  ///< ballot this proposer is driving
  bool p2a_sent_ = false;
  struct Promise {
    Ballot accepted_ballot = kNoBallot;
    Value accepted_value;
  };
  std::map<ProcessId, Promise> promises_;  ///< 1b replies for active_ballot_

  // --- acceptor state ---
  Ballot promised_ = 0;  ///< will accept any ballot >= promised_
  Ballot accepted_ballot_ = kNoBallot;
  Value accepted_value_;

  // --- learner state ---
  std::map<Ballot, std::set<ProcessId>> p2b_votes_;
  std::map<Ballot, Value> p2b_values_;

  Ballot max_ballot_seen_ = 0;
  bool was_leader_ = false;
};

}  // namespace zdc::consensus
