#include "consensus/p_consensus.h"

#include <algorithm>

#include "common/assert.h"
#include "common/log.h"

namespace zdc::consensus {

PConsensus::PConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                       const fd::SuspectView& suspects, Mutations mutations)
    : Consensus(self, group, host),
      suspects_(suspects),
      mutations_(mutations) {
  ZDC_ASSERT_MSG(group.one_step_resilient(), "P-Consensus requires f < n/3");
}

void PConsensus::start(Value proposal) {
  est_ = std::move(proposal);
  round_ = 1;
  enter_round();
  drive();
}

void PConsensus::enter_round() {
  note_round_started();
  quorum_q_.reset();
  common::Encoder enc;
  enc.put_u8(kPropTag);
  enc.put_u64(round_);
  enc.put_string(est_);
  broadcast_counted(enc.take());
}

void PConsensus::handle_message(ProcessId from, std::uint8_t tag,
                                common::Decoder& dec) {
  if (tag != kPropTag) {
    note_malformed();
    return;
  }
  const Round r = dec.get_u64();
  Value est = dec.get_string();
  if (!dec.done() || r == 0) {
    note_malformed();
    return;
  }
  if (r < round_) return;
  props_[r].emplace(from, std::move(est));
  drive();
}

void PConsensus::on_fd_change() {
  if (!proposed() || decided()) return;
  drive();
}

void PConsensus::drive() {
  while (!decided() && try_complete_round()) {
  }
}

bool PConsensus::try_complete_round() {
  const auto it = props_.find(round_);
  if (it == props_.end()) return false;
  const auto& received = it->second;

  // Line 2: wait for n−f round-r messages.
  if (received.size() < group_.quorum()) return false;

  // Lines 3-4: n−f identical values decide immediately — this is the one-step
  // path, taken regardless of the failure detector output. The seeded mutant
  // lowers the threshold to 1 (any received value "wins"), the bug the
  // checker self-tests must catch.
  {
    const std::uint32_t need =
        mutations_.skip_one_step_quorum ? 1 : group_.quorum();
    std::map<Value, std::uint32_t> counts;
    for (const auto& [from, v] : received) ++counts[v];
    for (const auto& [v, c] : counts) {
      if (c >= need) {
        decide_from_round(v, static_cast<std::uint32_t>(round_));
        return true;
      }
    }
  }

  // Line 5: freeze Q = the first n−f non-suspected processes, computed once
  // per round at the first evaluation that reaches this point.
  if (!quorum_q_.has_value()) {
    std::vector<ProcessId> q;
    for (ProcessId p = 0; p < group_.n && q.size() < group_.quorum(); ++p) {
      if (!suspects_.suspects(p)) q.push_back(p);
    }
    quorum_q_ = std::move(q);
  }

  // Line 6: wait for a message from every Q member not currently suspected
  // (the suspected set is re-read on every evaluation, so a member crashing
  // mid-round cannot block us once ◇P completeness kicks in).
  for (ProcessId p : *quorum_q_) {
    if (!suspects_.suspects(p) && received.find(p) == received.end()) {
      return false;
    }
  }

  // Line 7: Qlist = values received from Q members (suspected or not).
  std::vector<const Value*> qlist;
  ProcessId min_member = kNoProcess;
  for (ProcessId p : *quorum_q_) {
    auto mit = received.find(p);
    if (mit != received.end()) {
      qlist.push_back(&mit->second);
      if (min_member == kNoProcess) min_member = p;  // Q is ascending
    }
  }

  bool updated = false;
  if (qlist.size() == group_.quorum()) {
    // Lines 8-12: complete quorum. A value occurring n−2f times in Qlist is
    // unique (2(n−2f) > n−f for f < n/3).
    std::map<Value, std::uint32_t> counts;
    for (const Value* v : qlist) ++counts[*v];
    for (const auto& [v, c] : counts) {
      if (c >= group_.echo_threshold()) {
        est_ = v;
        updated = true;
        break;
      }
    }
    if (!updated) {
      // Line 12: adopt the estimate of the smallest-index quorum member (the
      // deterministic "leader of Q" pick). Q complete → its message arrived.
      est_ = received.at(min_member);
      updated = true;
    }
  } else {
    // Lines 13-15: incomplete quorum; only a strict majority among *all*
    // received values may be adopted (this is what preserves agreement when
    // ◇P output still differs across processes).
    std::map<Value, std::uint32_t> counts;
    for (const auto& [from, v] : received) ++counts[v];
    for (const auto& [v, c] : counts) {
      if (c > received.size() / 2) {
        est_ = v;
        updated = true;
        break;
      }
    }
  }

  if (!updated) note_wasted_round();

  props_.erase(it);
  ++round_;
  enter_round();
  return true;
}

}  // namespace zdc::consensus
