// Common interface of all consensus protocol implementations.
//
// Protocols are *sans-io* deterministic state machines: inputs arrive via
// propose() / on_message() / on_fd_change(), outputs leave through a
// ConsensusHost. The same protocol object runs unchanged on the discrete-event
// simulator (src/sim) and the threaded runtime (src/runtime).
//
// Every `wait until ...` in the paper's pseudo-code becomes a predicate that is
// re-evaluated on every input event. All such predicates quantify over
// "received at least ..." message sets, so evaluating them over supersets of
// the minimal quorum preserves the paper's safety arguments (see the per-
// protocol headers for the argument where it is subtle).
//
// The DECIDE flooding task T2 (identical in Algorithms 1 and 2) lives here in
// the base class: upon the first DECIDE(v) received, forward DECIDE(v) to all
// other processes and decide v.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/stats.h"
#include "common/types.h"

namespace zdc::consensus {

/// Outbound channel handed to a protocol instance by its execution
/// environment. broadcast() must deliver to every process *including the
/// sender* (the paper's "∀j do send to pj"); self-delivery must be
/// asynchronous (enqueued, not a reentrant call).
class ConsensusHost {
 public:
  virtual ~ConsensusHost() = default;
  virtual void send(ProcessId to, std::string bytes) = 0;
  virtual void broadcast(std::string bytes) = 0;
  /// Called exactly once, when this process decides.
  virtual void deliver_decision(const Value& v) = 0;

  /// Ordering-oracle hook used only by oracle-based protocols (WabConsensus):
  /// w-broadcasts `payload` in the per-instance sub-stage `stage`; deliveries
  /// come back through Consensus::on_w_deliver. Hosts that never run such a
  /// protocol keep the default, which loudly rejects the call.
  virtual void w_broadcast(std::uint64_t stage, std::string payload);
};

/// How this process learned the decision, for step accounting in the benches.
enum class DecisionPath : std::uint8_t {
  kNone = 0,
  kRound,      ///< decided by the protocol's own round logic (task T1)
  kForwarded,  ///< decided upon receiving a DECIDE message (task T2)
};

class Consensus {
 public:
  Consensus(ProcessId self, GroupParams group, ConsensusHost& host);
  virtual ~Consensus() = default;

  Consensus(const Consensus&) = delete;
  Consensus& operator=(const Consensus&) = delete;

  /// Invokes the Consensus function with proposal v. Messages received before
  /// propose() are buffered and replayed, matching the paper's model where a
  /// process only participates after it invokes consensus.
  void propose(Value v);

  /// Feeds one protocol message. Malformed messages are counted and dropped.
  ///
  /// Divergence from the pseudo-code, for robustness: DECIDE messages are
  /// acted upon even before this process invoked propose(). In the paper a
  /// process only runs task T2 after calling Consensus(), but a composed
  /// system (C-Abcast catching up on old instances) is strictly more live if
  /// a decision that already exists is adopted immediately — agreement and
  /// validity are unaffected since the value was already decided elsewhere.
  void on_message(ProcessId from, std::string_view bytes);

  /// Re-evaluates failure-detector-dependent wait conditions (the pseudo-code
  /// disjuncts of the form "∨ ld != Ω.leader").
  virtual void on_fd_change() {}

  /// Ordering-oracle delivery for sub-stage `stage` (see
  /// ConsensusHost::w_broadcast). Ignored by non-oracle protocols.
  virtual void on_w_deliver(std::uint64_t stage, ProcessId origin,
                            const std::string& payload) {
    (void)stage;
    (void)origin;
    (void)payload;
  }

  [[nodiscard]] bool decided() const { return path_ != DecisionPath::kNone; }
  [[nodiscard]] const Value& decision() const { return decision_; }
  [[nodiscard]] DecisionPath decision_path() const { return path_; }
  /// Number of communication steps from propose to decide as experienced by
  /// this process (a DECIDE hop counts as one step).
  [[nodiscard]] std::uint32_t decision_steps() const { return decision_steps_; }
  [[nodiscard]] bool proposed() const { return proposed_; }

  [[nodiscard]] const common::ProtocolMetrics& metrics() const { return metrics_; }
  [[nodiscard]] std::uint64_t malformed_messages() const { return malformed_; }

  /// Frames failing the wire checksum (see common::seal_frame). Counted
  /// separately from malformed_messages(): a corrupt frame is a *transport*
  /// casualty the integrity layer detected and dropped, a malformed message
  /// is a well-checksummed body the protocol decoder rejected.
  [[nodiscard]] std::uint64_t corrupt_frames_dropped() const {
    return corrupt_frames_dropped_;
  }

  /// Toggles the per-frame CRC32C seal on the point-to-point consensus wire
  /// (default on). Off exists only for the adversarial test harness: it
  /// demonstrates what a single undetected flip does to agreement (the
  /// checker's --no-frame-crc mode). Must be set identically on every
  /// process before any traffic flows. Virtual so wrapper protocols
  /// (Brasileiro, EfConsensus) propagate the toggle to the module they
  /// tunnel — the inner instance seals its own frames.
  virtual void set_frame_checksums(bool on) { frame_checksums_ = on; }
  [[nodiscard]] bool frame_checksums() const { return frame_checksums_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether handle_message() keeps running after this process decided.
  /// Defaults to false: a decided process drops protocol traffic, which is
  /// the cheapest behaviour and fine when every process learns the decision
  /// in the same exchange. Crash-recovery protocols that decide quietly must
  /// override to true — a process that was down during the decisive exchange
  /// can only catch up by driving a new ballot, and that ballot makes
  /// progress only if the decided majority still answers its acceptor-role
  /// messages. Adds no traffic in fault-free runs, where nothing stimulates
  /// a decided process. Public so schedule enumerators (src/check) can prune
  /// deliveries that on_message would drop anyway.
  [[nodiscard]] virtual bool serves_after_decide() const { return false; }

 protected:
  /// Message type tag reserved across all protocols for the T2 DECIDE flood.
  static constexpr std::uint8_t kDecideTag = 0;

  /// Starts task T1 with the buffered pre-propose messages already replayed.
  virtual void start(Value proposal) = 0;

  /// Handles one protocol-specific message (tag != kDecideTag). `dec` is
  /// positioned after the tag byte.
  virtual void handle_message(ProcessId from, std::uint8_t tag,
                              common::Decoder& dec) = 0;

  /// Task-T1 decision (pseudo-code line "∀j do send DECIDE(v); return v"):
  /// floods DECIDE and records the local decision. `steps` is the number of
  /// communication steps this process needed.
  void decide_from_round(const Value& v, std::uint32_t steps);

  /// Decision without the DECIDE flood, for protocols whose final message
  /// exchange already reaches every process (Paxos learns from the 2b
  /// broadcast; flooding would double the message complexity of Table 1).
  void decide_quietly(const Value& v, std::uint32_t steps);

  /// Counted send/broadcast wrappers used by subclasses.
  void send_counted(ProcessId to, std::string bytes);
  void broadcast_counted(std::string bytes);
  /// Oracle w-broadcast (counted as one message: a single datagram).
  void host_w_broadcast(std::uint64_t stage, std::string payload);
  void note_round_started() { ++metrics_.rounds_started; }
  void note_wasted_round() { ++metrics_.wasted_rounds; }
  void note_malformed() { ++malformed_; }

  [[nodiscard]] std::string encode_decide(const Value& v, std::uint32_t steps) const;

  const ProcessId self_;
  const GroupParams group_;

 private:
  void handle_decide(common::Decoder& dec);
  void finish(const Value& v, DecisionPath path, std::uint32_t steps);
  /// Tag dispatch over an already-verified (unsealed) message body; the
  /// pre-propose buffer stores bodies, so replay re-enters here, not
  /// on_message (a second open_frame on an unsealed body would reject it).
  void dispatch(ProcessId from, std::string_view body);
  /// Applies the wire seal iff frame checksums are on.
  [[nodiscard]] std::string seal(std::string body) const;

  ConsensusHost& host_;
  bool proposed_ = false;
  bool started_ = false;
  bool frame_checksums_ = true;
  std::vector<std::pair<ProcessId, std::string>> pre_propose_buffer_;
  Value decision_;
  DecisionPath path_ = DecisionPath::kNone;
  std::uint32_t decision_steps_ = 0;
  common::ProtocolMetrics metrics_;
  std::uint64_t malformed_ = 0;
  std::uint64_t corrupt_frames_dropped_ = 0;
};

/// Factory used by C-Abcast to stamp out one consensus instance per round.
using ConsensusFactory = std::function<std::unique_ptr<Consensus>(
    ProcessId self, GroupParams group, ConsensusHost& host)>;

}  // namespace zdc::consensus
