// Brasileiro et al. one-step consensus (PACT 2001) — the baseline whose
// three-round "normal case" motivates the paper (Sec. 2 and the zero-
// degradation benches).
//
// Preliminary voting round: broadcast the proposal, wait for n−f first-round
// values; n−f equal values decide in one communication step. Otherwise a value
// seen at least n−2f times (unique if anyone decided, since n−2f > f) — or the
// own proposal when no such value exists — is proposed to an *underlying*
// consensus module, whose agreement/termination properties complete the run.
// With a zero-degrading underlying module the divergent-proposal case costs
// 1 + 2 = 3 communication steps, exactly the overhead L-/P-Consensus remove.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "consensus/consensus.h"

namespace zdc::consensus {

class BrasileiroConsensus final : public Consensus {
 public:
  /// `underlying` builds the module consulted when the first round fails; it
  /// is created lazily so that runs deciding in one step never pay for it.
  BrasileiroConsensus(ProcessId self, GroupParams group, ConsensusHost& host,
                      ConsensusFactory underlying);
  ~BrasileiroConsensus() override;

  void on_fd_change() override;

  /// Propagates the toggle to the tunneled inner module (which seals its own
  /// frames inside the kInnerTag envelope); see Consensus::set_frame_checksums.
  void set_frame_checksums(bool on) override;

  [[nodiscard]] std::string name() const override { return "Brasileiro-OS"; }

 protected:
  void start(Value proposal) override;
  void handle_message(ProcessId from, std::uint8_t tag,
                      common::Decoder& dec) override;

 private:
  static constexpr std::uint8_t kVoteTag = 1;
  static constexpr std::uint8_t kInnerTag = 2;

  /// Host adapter that wraps the inner module's traffic in kInnerTag frames.
  class InnerHost;

  void evaluate_first_round();
  void start_inner(Value proposal);

  ConsensusFactory underlying_factory_;
  Value proposal_;
  bool first_round_closed_ = false;
  std::map<ProcessId, Value> votes_;
  std::unique_ptr<InnerHost> inner_host_;
  std::unique_ptr<Consensus> inner_;
  /// Inner-module messages that arrived before the first round closed here.
  std::vector<std::pair<ProcessId, std::string>> inner_buffer_;
};

}  // namespace zdc::consensus
