// The linearizable replicated-service layer on the threaded runtime:
// recovery::ReplicaGroup (durable RSM + catch-up) wrapped with client
// sessions, a reply router, and a leader-lease read gate.
//
// Write path: a Client frames each command as a (client id, seqno) session
// envelope and a-broadcasts it via a home replica. Every replica applies
// the envelope through its SessionStateMachine (dedup: retries never apply
// twice); an apply observed by the router wakes the waiting client with
// the reply. Replies are order-determined — every replica computes the
// same one — so with read-index OFF any replica's apply may answer. With
// read-index ON, only the lease-holding leader's applies answer clients:
// lease-read soundness needs "every acknowledged command is in the lease
// holder's applied state", which only holds if acknowledgements come from
// the lease holder itself.
//
// Read path (with_read_index()): a read is marshalled onto a leader
// candidate's worker thread and served straight from its applied state —
// no consensus round — iff the LEASE GATE holds:
//   1. the replica believes itself Ω-leader,
//   2. it is not a recovering lame duck,
//   3. its reign barrier has applied (see below), and
//   4. a majority endorsed it as leader within `lease_ms`
//      (HeartbeatFd::ms_since_quorum_endorsement — heartbeats carry the
//      sender's Ω estimate, and a peer switching leaders revokes its
//      endorsement immediately).
// If any clause fails the read DOWNGRADES: it is framed as an ordered
// kRead envelope and goes through consensus like a write — always
// linearizable, one message delay slower. Zero-degradation for reads, with
// a safety net.
//
// Reign barrier: on observing itself leader, a replica a-broadcasts a
// barrier no-op and serves lease reads only after that barrier has applied
// locally. The ack gate is ORDER-based: a replica may acknowledge applies
// only while the latest barrier in its applied prefix is its own — so
// every command any replica ever acknowledged is ordered BEFORE the next
// reign's barrier (an old leader that applies the new barrier goes silent
// at that exact point in the order). Once the new leader's barrier applies
// locally, its state therefore covers everything previously acknowledged.
// The fast-read gate adds the TIME-based half: serving requires a majority
// endorsement both fresh (age < lease_ms) and held continuously for at
// least lease_ms (HeartbeatFd::quorum_endorsement_streak_ms) — a new
// leader keeps silent for one full lease after winning the majority, by
// which time the old holder's endorsement has gone stale everywhere and it
// can no longer acknowledge or serve. As in Raft's lease reads this half
// assumes bounded clock drift; docs/SERVICE.md spells out the assumption
// and why the downgrade path never needs it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/run_options.h"
#include "recovery/replica_group.h"
#include "service/session.h"

namespace zdc::rsm {

class ServiceGroup;

/// Blocking client handle (one per session; use from one harness thread).
/// Obtained from ServiceGroup::client(); the session is implicitly opened
/// by its first request and closed by close_session().
class Client {
 public:
  /// Replicates one command; blocks until the reply is known. Retries
  /// internally (other home replica, same envelope) on timeout — the dedup
  /// table makes retries exactly-once. Returns "error:timeout" only after
  /// exhausting every attempt (a partitioned or dead cluster).
  std::string execute(std::string command);

  /// Linearizable read; served without a consensus round when the lease
  /// gate allows, transparently downgraded to an ordered read otherwise.
  std::string read(std::string query);

  /// Dedup GC: tombstones this session's server-side entry (erased after
  /// the order-based GC window — see session.h). Call only once the last
  /// reply has arrived.
  void close_session();

  [[nodiscard]] ClientId id() const { return id_; }

 private:
  friend class ServiceGroup;
  Client(ServiceGroup* svc, ClientId id, ProcessId home)
      : svc_(svc), id_(id), home_(home) {}

  ServiceGroup* svc_;
  ClientId id_;
  std::uint64_t seqno_ = 0;
  ProcessId home_;
};

class ServiceGroup {
 public:
  /// Builds the application (inner) state machine; the service wraps it in
  /// a SessionStateMachine per replica.
  using InnerFactory = std::function<std::unique_ptr<core::StateMachine>()>;

  struct Config {
    recovery::ReplicaGroup::Config replicas;
    /// Leader-gate poll period per replica (reign/barrier bookkeeping).
    double gate_poll_ms = 5.0;
    /// Client resubmit timeout and attempt cap (execute/read).
    double client_retry_ms = 1000.0;
    int client_max_attempts = 30;
  };

  /// `opts.service.sessions` must be set (with_sessions()); read-index
  /// serving follows `opts.service.read_index` / `opts.service.lease_ms`.
  ServiceGroup(const zdc::RunOptions& opts, InnerFactory make_inner)
      : ServiceGroup(opts, std::move(make_inner), Config()) {}
  ServiceGroup(const zdc::RunOptions& opts, InnerFactory make_inner,
               Config cfg);
  ~ServiceGroup();

  ServiceGroup(const ServiceGroup&) = delete;
  ServiceGroup& operator=(const ServiceGroup&) = delete;

  void start();
  void shutdown();

  /// New session with a fresh system-unique client id. `home` is the
  /// replica its traffic prefers (reads try the current leader first).
  [[nodiscard]] Client client(ProcessId home = 0);

  /// Nemesis surface (delegates to recovery::ReplicaGroup, then restores
  /// the service hooks on the fresh incarnation).
  void crash(ProcessId p);
  std::uint64_t restart(ProcessId p);

  [[nodiscard]] recovery::ReplicaGroup& replicas() { return *group_; }
  [[nodiscard]] std::uint32_t size() const { return n_; }

  /// Per-path counters (cumulative; readable any time).
  struct PathStats {
    std::uint64_t writes = 0;          ///< session writes submitted
    std::uint64_t fast_reads = 0;      ///< served by the lease gate, no
                                       ///< consensus round
    std::uint64_t ordered_reads = 0;   ///< downgraded/ordered through abcast
    std::uint64_t retries = 0;         ///< client resubmissions
    std::uint64_t duplicates = 0;      ///< dedup suppressions (all replicas)
  };
  [[nodiscard]] PathStats stats() const;

 private:
  friend class Client;

  /// Worker-thread-confined per-replica lease-gate state.
  struct Gate {
    bool was_leader = false;
    std::uint64_t reign = 0;
    std::uint64_t barrier_target = 0;  ///< reign whose barrier we await
    bool barrier_applied = false;
    /// Owner of the latest barrier in this replica's applied prefix; the
    /// order-based half of the gate (acks stop the moment someone else's
    /// barrier applies).
    ProcessId last_barrier_owner = kNoProcess;
  };

  struct Pending {
    std::string reply;
    bool done = false;
  };
  using Key = std::pair<ClientId, std::uint64_t>;

  std::string await_reply(const Key& key, ProcessId home,
                          const std::string& framed);
  std::string submit_read(Client& c, const std::string& query);
  void attach_observer(ProcessId p);
  void on_applied(ProcessId p, const Envelope& e, const std::string& reply);
  void schedule_gate_poll(ProcessId p);
  void gate_poll(ProcessId p);  ///< runs on p's worker thread
  /// The full lease gate for replica p (worker thread p only): Ω-leader,
  /// not recovering, own barrier latest in the applied prefix, endorsement
  /// fresh AND held for at least one lease. Gates both acks and fast reads.
  [[nodiscard]] bool holds_lease(ProcessId p) const;

  const std::uint32_t n_;
  const Config cfg_;
  const ServiceOptions service_;
  std::unique_ptr<recovery::ReplicaGroup> group_;

  /// Indexed by replica; each Gate is touched only on that replica's
  /// worker thread (scheduled callbacks + delivery observer).
  std::vector<std::unique_ptr<Gate>> gates_;

  mutable common::Mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Pending> pending_ ZDC_GUARDED_BY(mu_);

  std::atomic<ClientId> next_client_{1};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> fast_reads_{0};
  std::atomic<std::uint64_t> ordered_reads_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<bool> stopping_{false};

  // Pre-registered metric handles (null when metrics are off).
  obs::Counter* fast_reads_ctr_ = nullptr;
  obs::Counter* ordered_reads_ctr_ = nullptr;
  obs::Counter* writes_ctr_ = nullptr;
};

}  // namespace zdc::rsm
