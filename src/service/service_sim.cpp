#include "service/service_sim.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/stable_storage.h"
#include "common/types.h"
#include "core/rsm.h"
#include "recovery/durable_rsm.h"
#include "service/session.h"
#include "sim/event_queue.h"

namespace zdc::rsm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string tally_command(ClientId client, std::uint64_t seqno) {
  common::Encoder enc;
  enc.put_u64(client);
  enc.put_u64(seqno);
  return enc.take();
}

/// The sim's inner machine: a write counter that makes BOTH acceptance
/// checks cheap. Every write reply carries the write's global apply index
/// ("ok:N" — its position in the total order of writes), every read reply
/// the frontier it observed ("seen:M"); and a per-client applied-seqno
/// high-water mark turns any upstream dedup failure into a counted
/// double-apply (a session-layer retry that leaks through necessarily
/// re-presents a seqno at or below the mark). The mark is serialized, so
/// detection keeps working across checkpoint/restore and WAL replay.
class TallyMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override {
    common::Decoder dec(command);
    const ClientId client = dec.get_u64();
    const std::uint64_t seqno = dec.get_u64();
    if (!dec.done()) return "error:malformed";
    const auto [it, inserted] = applied_seqno_.try_emplace(client, seqno);
    if (!inserted) {
      if (seqno <= it->second) {
        ++double_applies_;
      } else {
        it->second = seqno;
      }
    }
    ++total_;
    return "ok:" + std::to_string(total_);
  }

  [[nodiscard]] std::string apply_read(const std::string&) const override {
    return "seen:" + std::to_string(total_);
  }

  [[nodiscard]] std::string snapshot() const override {
    std::uint64_t h = 1469598103934665603ULL;
    const std::string image = serialize();
    for (const char c : image) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    common::Encoder enc;
    enc.put_u64(h);
    return enc.take();
  }

  [[nodiscard]] std::string serialize() const override {
    common::Encoder enc;
    enc.put_u64(total_);
    enc.put_u64(double_applies_);
    enc.put_u64(applied_seqno_.size());
    for (const auto& [client, seqno] : applied_seqno_) {
      enc.put_u64(client);
      enc.put_u64(seqno);
    }
    return enc.take();
  }

  [[nodiscard]] bool restore(const std::string& image) override {
    common::Decoder dec(image);
    const std::uint64_t total = dec.get_u64();
    const std::uint64_t doubles = dec.get_u64();
    const std::uint64_t count = dec.get_u64();
    std::map<ClientId, std::uint64_t> next;
    for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
      const ClientId client = dec.get_u64();
      const std::uint64_t seqno = dec.get_u64();
      next.emplace(client, seqno);
    }
    if (!dec.done() || next.size() != count) return false;
    total_ = total;
    double_applies_ = doubles;
    applied_seqno_ = std::move(next);
    return true;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t double_applies() const {
    return double_applies_;
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t double_applies_ = 0;
  std::map<ClientId, std::uint64_t> applied_seqno_;
};

/// Parses the numeric suffix of "ok:N" / "seen:M"; false on any other
/// shape.
bool parse_suffix(const std::string& reply, const char* prefix,
                  std::uint64_t* out) {
  const std::string_view p(prefix);
  if (reply.size() <= p.size() || reply.compare(0, p.size(), p) != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = p.size(); i < reply.size(); ++i) {
    if (reply[i] < '0' || reply[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  *out = v;
  return true;
}

class World {
 public:
  explicit World(const ServiceSimConfig& cfg)
      : cfg_(cfg), n_(cfg.replicas), rng_(cfg.seed) {
    ZDC_ASSERT(n_ >= 1 && cfg_.sessions >= 1);
    ZDC_ASSERT_MSG(cfg_.crashes == 0 || cfg_.downtime_ms < cfg_.crash_every_ms,
                   "nemesis keeps at most one replica down at a time");
    replicas_.resize(n_);
    for (ProcessId p = 0; p < n_; ++p) boot_replica(p, /*recover=*/false);
    sessions_.resize(cfg_.sessions);
    if (cfg_.metrics != nullptr) {
      write_lat_ = &cfg_.metrics->histogram("zdc_service_client_latency_ms",
                                            {}, {{"path", "write"}});
      fast_lat_ = &cfg_.metrics->histogram("zdc_service_client_latency_ms",
                                           {}, {{"path", "fast_read"}});
      ordered_lat_ = &cfg_.metrics->histogram(
          "zdc_service_client_latency_ms", {}, {{"path", "ordered_read"}});
    }
  }

  ServiceSimReport run() {
    // Initial leadership: everyone starts believing the lowest replica, but
    // serving waits for its barrier + settle like any later reign.
    for (ProcessId p = 0; p < n_; ++p) schedule_view_update(p);
    schedule_arrivals();
    for (std::uint32_t k = 0; k < cfg_.crashes; ++k) {
      const double when = cfg_.crash_start_ms + k * cfg_.crash_every_ms;
      const ProcessId victim = k % n_;
      q_.at(when, [this, victim] { crash(victim); });
      q_.at(when + cfg_.downtime_ms, [this, victim] { restart(victim); });
    }
    q_.run(cfg_.time_limit_ms, ~std::uint64_t{0});
    return finish();
  }

 private:
  enum class Phase : std::uint8_t { kWrite, kRead, kClose, kDone };

  struct Session {
    std::uint64_t seqno = 0;
    std::uint64_t op_nonce = 0;  ///< bumped per attempt; stale-event filter
    std::uint32_t writes_done = 0;
    std::uint32_t reads_done = 0;
    std::uint32_t attempt = 0;
    Phase phase = Phase::kWrite;
    bool waiting = false;
    double invoke_t = 0.0;
    std::uint64_t frontier_at_invoke = 0;
    ProcessId home = 0;
  };

  struct Replica {
    /// Behind a pointer so Replica stays movable (the storage owns a
    /// Mutex); the object itself survives crash/restart like a disk.
    std::unique_ptr<common::InMemoryStableStorage> storage =
        std::make_unique<common::InMemoryStableStorage>();
    std::unique_ptr<recovery::DurableRsm> rsm;
    SessionStateMachine* session = nullptr;  ///< borrowed from rsm
    TallyMachine* tally = nullptr;           ///< borrowed
    bool crashed = false;
    bool pump_scheduled = false;
    // Believed-leader view + lease-gate model (mirrors ServiceGroup::Gate).
    ProcessId believed = kNoProcess;
    ProcessId last_barrier_owner = kNoProcess;
    std::uint64_t token = 0;  ///< reign token while self-asserting
    std::uint64_t barrier_applied_token = 0;
    double assert_t = -kInf;
    double majority_since = kInf;
    double lost_majority_t = kInf;
    bool has_majority = false;
  };

  struct CompletedWrite {
    std::uint64_t index;  ///< global write index N from "ok:N"
    double invoke_t;
    double response_t;
  };

  double hop() { return cfg_.delay_ms + rng_.uniform(0.0, cfg_.jitter_ms); }

  void boot_replica(ProcessId p, bool recover) {
    Replica& r = replicas_[p];
    auto tally = std::make_unique<TallyMachine>();
    TallyMachine* tally_raw = tally.get();
    auto session =
        std::make_unique<SessionStateMachine>(std::move(tally), cfg_.gc_window);
    SessionStateMachine* session_raw = session.get();
    recovery::DurableRsm::Config rcfg;
    rcfg.snapshot_every = cfg_.snapshot_every;
    rcfg.log_window = cfg_.log_window;
    r.rsm = std::make_unique<recovery::DurableRsm>(std::move(session),
                                                   r.storage.get(), rcfg);
    r.session = session_raw;
    r.tally = tally_raw;
    if (recover) {
      // The kill-9 reboot: WAL replay happens here, observer-less, exactly
      // like recovery::ReplicaGroup::restart does it.
      ZDC_ASSERT_MSG(r.rsm->recover(), "sim replica recovery failed");
    }
    r.session->set_observer(
        [this, p](const Envelope& e, const std::string& reply) {
          on_applied(p, e, reply);
        });
  }

  // ---- ordering core (modeled consensus fabric) ----

  void submit_to_core(std::string envelope) {
    q_.after(hop(), [this, env = std::move(envelope)]() mutable {
      const double t = q_.now();
      // The paper's collision rule, reduced to its timing signature: a
      // submission with no competitor inside the collision window decides
      // one-step (2 message delays); contended submissions fall back to
      // two-step (3 delays). Zero-degradation = the fallback costs exactly
      // the classic protocol, never more.
      const bool two_step = (t - last_submit_t_) < cfg_.collision_window_ms;
      last_submit_t_ = t;
      double commit_delay = 0.0;
      const int steps = two_step ? 3 : 2;
      for (int s = 0; s < steps; ++s) commit_delay += hop();
      if (two_step) {
        ++two_step_commits_;
      } else {
        ++one_step_commits_;
      }
      q_.after(commit_delay, [this, env = std::move(env)]() mutable {
        log_.push_back(std::move(env));
        for (ProcessId p = 0; p < n_; ++p) schedule_pump(p);
      });
    });
  }

  void schedule_pump(ProcessId p) {
    Replica& r = replicas_[p];
    if (r.crashed || r.pump_scheduled) return;
    r.pump_scheduled = true;
    q_.after(rng_.uniform(0.0, cfg_.apply_jitter_ms), [this, p] { pump(p); });
  }

  void pump(ProcessId p) {
    Replica& r = replicas_[p];
    r.pump_scheduled = false;
    if (r.crashed) return;
    while (r.rsm->applied() < log_.size()) {
      const std::uint64_t next = r.rsm->applied() + 1;
      r.rsm->apply(next, log_[next - 1]);  // observer fires inline
      if (r.crashed) return;  // a crash event cannot preempt, but be safe
    }
    if (p == 0) {
      max_open_sessions_ =
          std::max<std::uint64_t>(max_open_sessions_, r.session->open_sessions());
    }
  }

  // ---- leadership / lease model ----

  void schedule_view_update(ProcessId p) {
    q_.after(cfg_.detect_ms * rng_.uniform(0.5, 1.5),
             [this, p] { update_view(p); });
  }

  void update_view(ProcessId p) {
    Replica& r = replicas_[p];
    if (r.crashed) return;
    ProcessId lowest = kNoProcess;
    for (ProcessId x = 0; x < n_; ++x) {
      if (!replicas_[x].crashed) {
        lowest = x;
        break;
      }
    }
    if (r.believed == lowest) return;
    r.believed = lowest;
    if (lowest == p) {
      // Leadership acquisition: open a reign, broadcast its barrier. The
      // settle wait runs from here (the model's endorsement-streak stand-in).
      r.token = ++reign_counter_;
      r.assert_t = q_.now();
      submit_to_core(frame_barrier(p, r.token));
    }
    recompute_majorities();
  }

  void recompute_majorities() {
    const double t = q_.now();
    const std::uint32_t majority = n_ / 2 + 1;
    for (ProcessId lead = 0; lead < n_; ++lead) {
      Replica& r = replicas_[lead];
      std::uint32_t count = 0;
      for (ProcessId x = 0; x < n_; ++x) {
        if (!replicas_[x].crashed && replicas_[x].believed == lead) ++count;
      }
      const bool has = count >= majority && !r.crashed;
      if (has && !r.has_majority) {
        r.has_majority = true;
        r.majority_since = t;
        r.lost_majority_t = kInf;
      } else if (!has && r.has_majority) {
        r.has_majority = false;
        r.lost_majority_t = t;
      }
    }
  }

  /// ServiceGroup::holds_lease, modeled: believes self, own barrier latest
  /// in the applied prefix, endorsement fresh (majority now, or within the
  /// lease grace of losing it), and held since settle_ms.
  bool holds_lease(ProcessId p, double t) {
    const Replica& r = replicas_[p];
    if (r.crashed || r.believed != p) return false;
    if (r.last_barrier_owner != p) return false;
    const bool fresh =
        r.has_majority || t < r.lost_majority_t + cfg_.lease_ms;
    if (!fresh) return false;
    const double held_since = std::max(r.assert_t, r.majority_since);
    return t >= held_since + cfg_.settle_ms;
  }

  // ---- nemesis ----

  void crash(ProcessId p) {
    Replica& r = replicas_[p];
    if (r.crashed) return;
    ++crash_events_;
    r.crashed = true;
    r.pump_scheduled = false;
    r.believed = kNoProcess;
    r.has_majority = false;
    r.lost_majority_t = q_.now();
    // The per-incarnation dedup counter dies with the machine (it is
    // deliberately not serialized); bank it so the report keeps the hits
    // this incarnation absorbed. A restarted replica recounts whatever
    // suffix it replays past its checkpoint — acceptable for a diagnostic
    // whose acceptance use is "strictly positive under nemesis".
    duplicates_harvested_ += r.session->duplicates_suppressed();
    // kill -9: staged-but-unsynced storage writes are gone. Everything the
    // write-ahead discipline synced survives in r.storage.
    r.storage->drop_unsynced();
    r.rsm.reset();
    r.session = nullptr;
    r.tally = nullptr;
    recompute_majorities();
    for (ProcessId x = 0; x < n_; ++x) {
      if (!replicas_[x].crashed) schedule_view_update(x);
    }
  }

  void restart(ProcessId p) {
    Replica& r = replicas_[p];
    if (!r.crashed) return;
    ++restart_events_;
    boot_replica(p, /*recover=*/true);
    r.crashed = false;
    r.last_barrier_owner = kNoProcess;  // observer-less replay, like runtime
    r.barrier_applied_token = 0;
    r.assert_t = -kInf;
    schedule_pump(p);  // catch up from the committed log
    for (ProcessId x = 0; x < n_; ++x) {
      if (!replicas_[x].crashed) schedule_view_update(x);
    }
  }

  // ---- server->client path ----

  void on_applied(ProcessId p, const Envelope& e, const std::string& reply) {
    Replica& r = replicas_[p];
    if (e.kind == EnvelopeKind::kBarrier) {
      ProcessId owner = kNoProcess;
      std::uint64_t token = 0;
      if (decode_barrier_token(e.command, &owner, &token)) {
        r.last_barrier_owner = owner;
        if (owner == p && token == r.token) r.barrier_applied_token = token;
      }
      return;
    }
    if (e.kind == EnvelopeKind::kBare) return;
    if (cfg_.read_index && !holds_lease(p, q_.now())) return;
    // Deliver the reply to the client one hop later. With read-index off
    // every replica acks and the client keeps the first; duplicates are
    // filtered by (seqno, kind) matching in on_client_reply.
    q_.after(hop(), [this, client = e.client, seqno = e.seqno, kind = e.kind,
                     reply] { on_client_reply(client, seqno, kind, reply); });
  }

  void on_client_reply(ClientId client, std::uint64_t seqno,
                       EnvelopeKind kind, const std::string& reply) {
    if (client == 0 || client > sessions_.size()) return;
    Session& s = sessions_[client - 1];
    if (!s.waiting) return;
    const double now = q_.now();
    switch (kind) {
      case EnvelopeKind::kRequest: {
        if (s.phase != Phase::kWrite || s.seqno != seqno) return;
        std::uint64_t index = 0;
        if (!parse_suffix(reply, "ok:", &index)) {
          note_violation("write " + std::to_string(client) + ":" +
                         std::to_string(seqno) + " got reply '" + reply + "'");
          ++lin_violations_;
        } else {
          completed_writes_.push_back(
              CompletedWrite{index, s.invoke_t, now});
          frontier_ = std::max(frontier_, index);
        }
        ++writes_acked_;
        write_lat_sum_ += now - s.invoke_t;
        if (write_lat_ != nullptr) write_lat_->observe(now - s.invoke_t);
        ++s.writes_done;
        break;
      }
      case EnvelopeKind::kRead: {
        if (s.phase != Phase::kRead || s.seqno != seqno) return;
        accept_read_reply(s, client, reply, /*fast=*/false, now);
        break;
      }
      case EnvelopeKind::kClose: {
        if (s.phase != Phase::kClose) return;
        s.waiting = false;
        s.phase = Phase::kDone;
        ++sessions_completed_;
        --open_sessions_;
        maybe_open_next();
        return;
      }
      default:
        return;
    }
    s.waiting = false;
    next_op(client);
  }

  void accept_read_reply(Session& s, ClientId client, const std::string& reply,
                         bool fast, double now) {
    std::uint64_t seen = 0;
    if (!parse_suffix(reply, "seen:", &seen)) {
      note_violation("read " + std::to_string(client) + ":" +
                     std::to_string(s.seqno) + " got reply '" + reply + "'");
      ++lin_violations_;
    } else {
      // THE real-time check for reads: every write (or read) completed
      // before this read was invoked had pushed the frontier to
      // frontier_at_invoke; a linearizable read must observe at least that
      // much state.
      if (seen < s.frontier_at_invoke) {
        ++lin_violations_;
        note_violation("read " + std::to_string(client) + ":" +
                       std::to_string(s.seqno) + " saw " +
                       std::to_string(seen) + " < frontier " +
                       std::to_string(s.frontier_at_invoke) +
                       (fast ? " (fast)" : " (ordered)"));
      }
      frontier_ = std::max(frontier_, seen);
    }
    ++reads_acked_;
    const double lat = now - s.invoke_t;
    if (fast) {
      ++fast_reads_;
      fast_lat_sum_ += lat;
      if (fast_lat_ != nullptr) fast_lat_->observe(lat);
    } else {
      ++ordered_reads_;
      ordered_lat_sum_ += lat;
      if (ordered_lat_ != nullptr) ordered_lat_->observe(lat);
    }
    ++s.reads_done;
  }

  // ---- client sessions ----

  void schedule_arrivals() {
    if (cfg_.open_loop) {
      schedule_next_arrival();
    } else {
      const std::uint64_t window =
          std::min<std::uint64_t>(cfg_.concurrency, cfg_.sessions);
      for (std::uint64_t i = 0; i < window; ++i) open_session();
    }
  }

  void schedule_next_arrival() {
    if (sessions_opened_ >= cfg_.sessions) return;
    q_.after(rng_.exponential(1.0 / cfg_.arrivals_per_ms), [this] {
      if (sessions_opened_ < cfg_.sessions) {
        open_session();
        schedule_next_arrival();
      }
    });
  }

  void maybe_open_next() {
    if (!cfg_.open_loop && sessions_opened_ < cfg_.sessions) open_session();
  }

  void open_session() {
    const ClientId client = ++sessions_opened_;  // ids are 1-based
    Session& s = sessions_[client - 1];
    s.home = static_cast<ProcessId>(client % n_);
    ++open_sessions_;
    next_op(client);
  }

  void next_op(ClientId client) {
    Session& s = sessions_[client - 1];
    // Interleave writes and reads, then close. The mix across thousands of
    // concurrent sessions is what stresses the collision window and the
    // read paths simultaneously.
    const std::uint32_t done = s.writes_done + s.reads_done;
    const bool want_write =
        s.writes_done < cfg_.writes_per_session &&
        (done % 2 == 0 || s.reads_done >= cfg_.reads_per_session);
    const bool want_read = s.reads_done < cfg_.reads_per_session;
    s.attempt = 0;
    ++s.op_nonce;
    s.waiting = true;
    s.invoke_t = q_.now();
    s.frontier_at_invoke = frontier_;
    if (want_write) {
      s.phase = Phase::kWrite;
      ++s.seqno;
      send_attempt(client);
    } else if (want_read) {
      s.phase = Phase::kRead;
      ++s.seqno;
      send_attempt(client);
    } else {
      s.phase = Phase::kClose;
      send_attempt(client);
    }
  }

  void send_attempt(ClientId client) {
    Session& s = sessions_[client - 1];
    if (s.attempt > 0) ++retries_;
    switch (s.phase) {
      case Phase::kWrite:
        submit_to_core(
            frame_request(client, s.seqno, tally_command(client, s.seqno)));
        break;
      case Phase::kRead:
        if (cfg_.read_index) {
          send_fast_read(client);
        } else {
          submit_to_core(frame_read(client, s.seqno, ""));
        }
        break;
      case Phase::kClose:
        submit_to_core(frame_close(client));
        break;
      case Phase::kDone:
        return;
    }
    q_.after(cfg_.client_timeout_ms,
             [this, client, nonce = s.op_nonce] { on_timeout(client, nonce); });
  }

  void send_fast_read(ClientId client) {
    Session& s = sessions_[client - 1];
    // Ask a (rotating) replica who it believes leads and aim there — the
    // model of "client tracks the leader hint".
    const ProcessId via = (s.home + s.attempt) % n_;
    ProcessId candidate =
        replicas_[via].crashed ? via : replicas_[via].believed;
    if (candidate == kNoProcess) candidate = via;
    q_.after(hop(), [this, client, candidate, nonce = s.op_nonce] {
      Session& s2 = sessions_[client - 1];
      if (!s2.waiting || s2.op_nonce != nonce) return;  // stale attempt
      Replica& r = replicas_[candidate];
      const bool lease_ok = !r.crashed && holds_lease(candidate, q_.now()) &&
                            r.barrier_applied_token == r.token &&
                            r.token != 0;
      if (lease_ok) {
        // THE fast path: answered from the replica's applied state; no
        // consensus round, total cost two message hops.
        std::string reply = r.session->apply_read("");
        q_.after(hop(), [this, client, nonce, reply = std::move(reply)] {
          Session& s3 = sessions_[client - 1];
          if (!s3.waiting || s3.op_nonce != nonce) return;
          accept_read_reply(s3, client, reply, /*fast=*/true, q_.now());
          s3.waiting = false;
          next_op(client);
        });
      } else {
        // Downgrade: order the read through consensus like a write.
        submit_to_core(frame_read(client, s2.seqno, ""));
      }
    });
  }

  void on_timeout(ClientId client, std::uint64_t nonce) {
    Session& s = sessions_[client - 1];
    if (!s.waiting || s.op_nonce != nonce) return;
    if (s.attempt + 1 >= cfg_.max_attempts) {
      s.waiting = false;  // starved; finish() reports the incompleteness
      return;
    }
    ++s.attempt;
    ++s.op_nonce;
    send_attempt(client);
  }

  // ---- final checks ----

  ServiceSimReport finish() {
    // Drain every replica to the end of the committed log, then compare
    // digests (a restarted replica must have converged byte-for-byte).
    for (ProcessId p = 0; p < n_; ++p) {
      Replica& r = replicas_[p];
      if (r.crashed) continue;
      while (r.rsm->applied() < log_.size()) {
        const std::uint64_t next = r.rsm->applied() + 1;
        r.rsm->apply(next, log_[next - 1]);
      }
    }
    ServiceSimReport rep;
    rep.digests_converged = true;
    std::string digest;
    for (ProcessId p = 0; p < n_; ++p) {
      Replica& r = replicas_[p];
      if (r.crashed) continue;
      const std::string d = r.session->snapshot();
      if (digest.empty()) {
        digest = d;
      } else if (d != digest) {
        rep.digests_converged = false;
      }
      rep.double_applies += r.tally->double_applies();
      rep.duplicates_suppressed += r.session->duplicates_suppressed();
    }
    rep.duplicates_suppressed += duplicates_harvested_;
    // Real-time order over completed writes: sort by global apply index and
    // scan with the running max of invocation times — op j is misordered
    // iff some i ordered before it was invoked after j completed. O(n log n)
    // total, which is what lets the checker ride along at 10^5+ sessions.
    std::sort(completed_writes_.begin(), completed_writes_.end(),
              [](const CompletedWrite& a, const CompletedWrite& b) {
                return a.index < b.index;
              });
    double max_invoke = -kInf;
    for (std::size_t j = 0; j < completed_writes_.size(); ++j) {
      const CompletedWrite& w = completed_writes_[j];
      if (j > 0 && completed_writes_[j - 1].index == w.index) {
        ++lin_violations_;
        note_violation("two completed writes share apply index " +
                       std::to_string(w.index));
      }
      if (w.response_t < max_invoke) {
        ++lin_violations_;
        note_violation("write at index " + std::to_string(w.index) +
                       " completed before an earlier-ordered write was "
                       "invoked");
      }
      max_invoke = std::max(max_invoke, w.invoke_t);
    }
    rep.completed = sessions_completed_ == cfg_.sessions;
    rep.sessions_completed = sessions_completed_;
    rep.writes_acked = writes_acked_;
    rep.reads_acked = reads_acked_;
    rep.fast_reads = fast_reads_;
    rep.ordered_reads = ordered_reads_;
    rep.one_step_commits = one_step_commits_;
    rep.two_step_commits = two_step_commits_;
    rep.retries = retries_;
    rep.crash_events = crash_events_;
    rep.restart_events = restart_events_;
    rep.max_open_sessions = max_open_sessions_;
    rep.lin_violations = lin_violations_;
    rep.first_violation = first_violation_;
    rep.sim_ms = q_.now();
    if (writes_acked_ > 0) {
      rep.write_mean_ms = write_lat_sum_ / static_cast<double>(writes_acked_);
    }
    if (fast_reads_ > 0) {
      rep.fast_read_mean_ms =
          fast_lat_sum_ / static_cast<double>(fast_reads_);
    }
    if (ordered_reads_ > 0) {
      rep.ordered_read_mean_ms =
          ordered_lat_sum_ / static_cast<double>(ordered_reads_);
    }
    return rep;
  }

  void note_violation(const std::string& what) {
    if (first_violation_.empty()) first_violation_ = what;
  }

  const ServiceSimConfig cfg_;
  const std::uint32_t n_;
  common::Rng rng_;
  sim::EventQueue q_;

  std::vector<Replica> replicas_;
  std::vector<Session> sessions_;
  std::vector<std::string> log_;  ///< the global committed order

  double last_submit_t_ = -kInf;
  std::uint64_t reign_counter_ = 0;

  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_completed_ = 0;
  std::uint64_t open_sessions_ = 0;
  std::uint64_t writes_acked_ = 0;
  std::uint64_t reads_acked_ = 0;
  std::uint64_t fast_reads_ = 0;
  std::uint64_t ordered_reads_ = 0;
  std::uint64_t one_step_commits_ = 0;
  std::uint64_t two_step_commits_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t crash_events_ = 0;
  std::uint64_t restart_events_ = 0;
  /// Dedup hits banked from crashed incarnations (see crash()).
  std::uint64_t duplicates_harvested_ = 0;
  std::uint64_t max_open_sessions_ = 0;
  std::uint64_t lin_violations_ = 0;
  std::uint64_t frontier_ = 0;
  std::vector<CompletedWrite> completed_writes_;
  std::string first_violation_;

  double write_lat_sum_ = 0.0;
  double fast_lat_sum_ = 0.0;
  double ordered_lat_sum_ = 0.0;
  obs::Histogram* write_lat_ = nullptr;
  obs::Histogram* fast_lat_ = nullptr;
  obs::Histogram* ordered_lat_ = nullptr;
};

}  // namespace

ServiceSimReport run_service_sim(const ServiceSimConfig& cfg) {
  World world(cfg);
  return world.run();
}

}  // namespace zdc::rsm
