// Caching lock service over the session RSM (the yfs
// lock_server_cache / lock_client_cache split, replicated).
//
// Server side: LockStateMachine is an ordinary deterministic StateMachine —
// ACQUIRE/RELEASE commands ordered by atomic broadcast, one owner per lock,
// FIFO waiter queues. Because an RSM cannot push messages, the server's
// revoke/grant notifications are *encoded in the replies* ("wait:revoke:7"
// = caller must wait, and client 7 should be told to give the lock back);
// the service layer parses them with parse_lock_reply() and routes the
// events to the affected clients.
//
// Client side: LockClient caches a granted lock across release/re-acquire.
// release() is LOCAL (state held -> cached) unless a revoke arrived; only a
// revoked lock goes back to the server. A cached lock is re-acquired with
// zero server traffic — the whole point of the caching protocol: lock
// traffic scales with *contention*, not with acquire/release rate.
//
// Cache-state machine (per lock, per client):
//   kNone      --acquire-->  kAcquiring  --granted-->  kHeld
//   kHeld      --release-->  kCached     --acquire-->  kHeld      (no I/O)
//   kHeld      --revoke-->   kRevokePending --release--> kNone    (RELEASE)
//   kCached    --revoke-->   kNone                                (RELEASE)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "core/rsm.h"
#include "service/session.h"

namespace zdc::rsm {

enum class LockOp : std::uint8_t { kAcquire = 1, kRelease = 2, kHolder = 3 };

/// Command constructors (binary, codec-framed like kv_store commands).
std::string lock_acquire(const std::string& lock, ClientId client);
std::string lock_release(const std::string& lock, ClientId client);
/// Read-only holder query, servable via apply_read (read-index path).
std::string lock_holder(const std::string& lock);

/// Reply grammar (pinned by lock_service_test):
///   ACQUIRE -> "granted" | "granted:revoke"        (got it; revoke = others
///                                                   already wait, hand back
///                                                   after use)
///            | "wait" | "wait:revoke:<holder>"     (enqueued; second form
///                                                   names who must be told
///                                                   to release)
///            | "error:already_held"
///   RELEASE -> "ok" | "ok:granted:<next>" | "ok:granted:<next>:revoke"
///            | "error:not_holder"
///   HOLDER  -> "holder:<id>" | "free"              (also via apply_read)
class LockStateMachine final : public core::StateMachine {
 public:
  std::string apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] bool restore(const std::string& image) override;
  [[nodiscard]] std::string apply_read(const std::string& query) const override;

  [[nodiscard]] std::size_t lock_count() const { return locks_.size(); }

 private:
  struct Lock {
    ClientId owner = 0;  ///< 0 = free (client ids start at 1)
    std::deque<ClientId> waiters;
  };

  std::map<std::string, Lock> locks_;
};

/// Notification events parsed out of a lock reply: who (if anyone) was just
/// granted the lock, whether the grant arrives with revoke-pending, and who
/// (if anyone) must be asked to give the lock back. 0 = no such event.
struct LockEvents {
  ClientId grantee = 0;
  bool grantee_must_return = false;
  ClientId revokee = 0;
};
[[nodiscard]] LockEvents parse_lock_reply(const std::string& reply);

/// Client-side lock cache (single client, single thread — the service/sim
/// layer drives one per simulated client). Pure cache-state bookkeeping:
/// the `send` hook is invoked with the command bytes whenever real server
/// traffic is required; everything else is local.
class LockClient {
 public:
  enum class CacheState : std::uint8_t {
    kNone = 0,
    kAcquiring = 1,
    kHeld = 2,
    kCached = 3,         ///< granted but not in use: free to reuse locally
    kRevokePending = 4,  ///< held, must RELEASE to the server when done
  };

  LockClient(ClientId id, std::function<void(std::string command)> send)
      : id_(id), send_(std::move(send)) {}

  /// Returns true if the lock is held after the call (cache hit); false
  /// means an ACQUIRE was sent and the caller waits for on_granted().
  bool acquire(const std::string& lock);
  /// Local unless a revoke is pending (then a RELEASE goes to the server).
  void release(const std::string& lock);
  /// Grant notification (from an ACQUIRE reply or a routed grant event).
  /// `must_return` = the grant carried revoke-pending.
  void on_granted(const std::string& lock, bool must_return);
  /// Revoke notification routed from another client's "wait:revoke:me".
  void on_revoke(const std::string& lock);

  [[nodiscard]] CacheState state(const std::string& lock) const;
  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t server_round_trips() const {
    return server_round_trips_;
  }

 private:
  const ClientId id_;
  std::function<void(std::string command)> send_;
  std::map<std::string, CacheState> locks_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t server_round_trips_ = 0;
};

}  // namespace zdc::rsm
