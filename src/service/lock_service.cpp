#include "service/lock_service.h"

#include <string_view>
#include <utility>

#include "common/codec.h"

namespace zdc::rsm {

namespace {

std::string make_lock_command(LockOp op, const std::string& lock,
                              ClientId client) {
  common::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(op));
  enc.put_string(lock);
  enc.put_u64(client);
  return enc.take();
}

}  // namespace

std::string lock_acquire(const std::string& lock, ClientId client) {
  return make_lock_command(LockOp::kAcquire, lock, client);
}

std::string lock_release(const std::string& lock, ClientId client) {
  return make_lock_command(LockOp::kRelease, lock, client);
}

std::string lock_holder(const std::string& lock) {
  return make_lock_command(LockOp::kHolder, lock, 0);
}

std::string LockStateMachine::apply(const std::string& command) {
  common::Decoder dec(command);
  const auto op = static_cast<LockOp>(dec.get_u8());
  const std::string name = dec.get_string();
  const ClientId client = dec.get_u64();
  if (!dec.done()) return "error:malformed";

  switch (op) {
    case LockOp::kAcquire: {
      Lock& lock = locks_[name];
      if (lock.owner == 0) {
        lock.owner = client;
        // Waiters can exist on a free lock only transiently (a release
        // hands off directly), so a fresh grant is revoke-free.
        return "granted";
      }
      if (lock.owner == client) return "error:already_held";
      for (const ClientId w : lock.waiters) {
        if (w == client) return "wait";  // already queued; don't re-enqueue
      }
      lock.waiters.push_back(client);
      // First waiter triggers the revoke; later waiters know the holder was
      // already asked.
      return lock.waiters.size() == 1
                 ? "wait:revoke:" + std::to_string(lock.owner)
                 : "wait";
    }
    case LockOp::kRelease: {
      const auto it = locks_.find(name);
      if (it == locks_.end() || it->second.owner != client) {
        return "error:not_holder";
      }
      Lock& lock = it->second;
      if (lock.waiters.empty()) {
        locks_.erase(it);  // fully free locks leave no state behind
        return "ok";
      }
      const ClientId next = lock.waiters.front();
      lock.waiters.pop_front();
      lock.owner = next;
      // Direct handoff: the new owner learns (via the routed grant event)
      // whether still more clients wait — if so it must hand back promptly.
      return lock.waiters.empty()
                 ? "ok:granted:" + std::to_string(next)
                 : "ok:granted:" + std::to_string(next) + ":revoke";
    }
    case LockOp::kHolder: {
      const auto it = locks_.find(name);
      return it == locks_.end() ? "free"
                                : "holder:" + std::to_string(it->second.owner);
    }
  }
  return "error:unknown_op";
}

std::string LockStateMachine::apply_read(const std::string& query) const {
  common::Decoder dec(query);
  const auto op = static_cast<LockOp>(dec.get_u8());
  const std::string name = dec.get_string();
  const ClientId client = dec.get_u64();
  static_cast<void>(client);
  if (!dec.done()) return "error:malformed";
  if (op != LockOp::kHolder) return "error:unsupported_read";
  const auto it = locks_.find(name);
  return it == locks_.end() ? "free"
                            : "holder:" + std::to_string(it->second.owner);
}

std::string LockStateMachine::snapshot() const {
  // Hash of the canonical serialization: equal states <=> equal digests.
  const std::string image = serialize();
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : image) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  common::Encoder enc;
  enc.put_u64(h);
  enc.put_u64(locks_.size());
  return enc.take();
}

std::string LockStateMachine::serialize() const {
  common::Encoder enc;
  enc.put_u64(locks_.size());
  for (const auto& [name, lock] : locks_) {
    enc.put_string(name);
    enc.put_u64(lock.owner);
    enc.put_u64(lock.waiters.size());
    for (const ClientId w : lock.waiters) enc.put_u64(w);
  }
  return enc.take();
}

bool LockStateMachine::restore(const std::string& image) {
  common::Decoder dec(image);
  const std::uint64_t count = dec.get_u64();
  std::map<std::string, Lock> next;
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    std::string name = dec.get_string();
    Lock lock;
    lock.owner = dec.get_u64();
    const std::uint64_t waiters = dec.get_u64();
    for (std::uint64_t w = 0; w < waiters && dec.ok(); ++w) {
      lock.waiters.push_back(dec.get_u64());
    }
    if (!dec.ok()) break;
    next.emplace(std::move(name), std::move(lock));
  }
  if (!dec.done() || next.size() != count) return false;
  locks_ = std::move(next);
  return true;
}

LockEvents parse_lock_reply(const std::string& reply) {
  LockEvents ev;
  auto parse_id = [](const std::string& s, std::size_t pos,
                     std::size_t* end) -> ClientId {
    ClientId v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v = v * 10 + static_cast<ClientId>(s[pos] - '0');
      ++pos;
    }
    *end = pos;
    return v;
  };
  constexpr std::string_view kWaitRevoke = "wait:revoke:";
  constexpr std::string_view kOkGranted = "ok:granted:";
  if (reply.rfind(kWaitRevoke, 0) == 0) {
    std::size_t end = 0;
    ev.revokee = parse_id(reply, kWaitRevoke.size(), &end);
  } else if (reply.rfind(kOkGranted, 0) == 0) {
    std::size_t end = 0;
    ev.grantee = parse_id(reply, kOkGranted.size(), &end);
    ev.grantee_must_return = reply.compare(end, std::string::npos, ":revoke") == 0;
  }
  return ev;
}

bool LockClient::acquire(const std::string& lock) {
  CacheState& st = locks_[lock];
  if (st == CacheState::kCached) {
    // The caching payoff: re-acquire without any server traffic.
    st = CacheState::kHeld;
    ++cache_hits_;
    return true;
  }
  st = CacheState::kAcquiring;
  ++server_round_trips_;
  send_(lock_acquire(lock, id_));
  return false;
}

void LockClient::release(const std::string& lock) {
  const auto it = locks_.find(lock);
  if (it == locks_.end()) return;
  if (it->second == CacheState::kRevokePending) {
    // Someone is waiting: give the lock back to the server now.
    it->second = CacheState::kNone;
    ++server_round_trips_;
    send_(lock_release(lock, id_));
    return;
  }
  if (it->second == CacheState::kHeld) it->second = CacheState::kCached;
}

void LockClient::on_granted(const std::string& lock, bool must_return) {
  locks_[lock] = must_return ? CacheState::kRevokePending : CacheState::kHeld;
}

void LockClient::on_revoke(const std::string& lock) {
  const auto it = locks_.find(lock);
  if (it == locks_.end()) return;
  if (it->second == CacheState::kCached) {
    // Not in use: comply immediately.
    it->second = CacheState::kNone;
    ++server_round_trips_;
    send_(lock_release(lock, id_));
  } else if (it->second == CacheState::kHeld) {
    it->second = CacheState::kRevokePending;
  }
}

LockClient::CacheState LockClient::state(const std::string& lock) const {
  const auto it = locks_.find(lock);
  return it == locks_.end() ? CacheState::kNone : it->second;
}

}  // namespace zdc::rsm
