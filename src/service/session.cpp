#include "service/session.h"

#include <utility>

#include "common/codec.h"

namespace zdc::rsm {

std::string encode_envelope(const Envelope& e) {
  common::Encoder enc(1 + 8 + 8 + 4 + e.command.size());
  enc.put_u8(static_cast<std::uint8_t>(e.kind));
  enc.put_u64(e.client);
  enc.put_u64(e.seqno);
  enc.put_string(e.command);
  return enc.take();
}

bool decode_envelope(const std::string& bytes, Envelope* out) {
  common::Decoder dec(bytes);
  const std::uint8_t kind = dec.get_u8();
  out->client = dec.get_u64();
  out->seqno = dec.get_u64();
  out->command = dec.get_string();
  if (!dec.done()) return false;
  if (kind > static_cast<std::uint8_t>(EnvelopeKind::kBarrier)) return false;
  out->kind = static_cast<EnvelopeKind>(kind);
  return true;
}

std::string frame_request(ClientId client, std::uint64_t seqno,
                          std::string command) {
  return encode_envelope(
      Envelope{EnvelopeKind::kRequest, client, seqno, std::move(command)});
}

std::string frame_read(ClientId client, std::uint64_t seqno,
                       std::string query) {
  return encode_envelope(
      Envelope{EnvelopeKind::kRead, client, seqno, std::move(query)});
}

std::string frame_close(ClientId client) {
  return encode_envelope(Envelope{EnvelopeKind::kClose, client, 0, ""});
}

std::string frame_barrier(ProcessId replica, std::uint64_t reign) {
  common::Encoder tok;
  tok.put_u32(replica);
  tok.put_u64(reign);
  return encode_envelope(Envelope{EnvelopeKind::kBarrier, 0, 0, tok.take()});
}

bool decode_barrier_token(const std::string& token, ProcessId* replica,
                          std::uint64_t* reign) {
  common::Decoder dec(token);
  *replica = dec.get_u32();
  *reign = dec.get_u64();
  return dec.done();
}

SessionStateMachine::SessionStateMachine(
    std::unique_ptr<core::StateMachine> inner, std::uint64_t gc_window)
    : inner_(std::move(inner)), gc_window_(gc_window) {}

std::string SessionStateMachine::apply(const std::string& command) {
  ++applies_;
  Envelope e;
  std::string reply;
  if (!decode_envelope(command, &e)) {
    // Refused identically on every replica (the reply is a pure function of
    // the bytes), so convergence is unaffected.
    e = Envelope{};
    reply = kReplyBadEnvelope;
  } else {
    reply = apply_envelope(e);
  }
  // Order-based tombstone GC: erase closes that aged past the window. Runs
  // on the applies_ clock, so every replica erases at the same point in the
  // stream. Compact the drained prefix once it dominates the vector.
  while (gc_head_ < pending_gc_.size() &&
         pending_gc_[gc_head_].first + gc_window_ <= applies_) {
    const auto it = sessions_.find(pending_gc_[gc_head_].second);
    if (it != sessions_.end() && it->second.closed) sessions_.erase(it);
    ++gc_head_;
  }
  if (gc_head_ > 64 && gc_head_ * 2 > pending_gc_.size()) {
    pending_gc_.erase(pending_gc_.begin(),
                      pending_gc_.begin() +
                          static_cast<std::ptrdiff_t>(gc_head_));
    gc_head_ = 0;
  }
  if (observer_) observer_(e, reply);
  return reply;
}

std::string SessionStateMachine::apply_envelope(const Envelope& e) {
  switch (e.kind) {
    case EnvelopeKind::kBare:
      return inner_->apply(e.command);
    case EnvelopeKind::kRequest:
    case EnvelopeKind::kRead: {
      const auto it = sessions_.find(e.client);
      if (it != sessions_.end()) {
        if (e.seqno == it->second.last_seqno) {
          // The retry of the in-flight command: executed already, replay
          // the remembered reply. THE exactly-once moment. (Holds for
          // tombstoned sessions too — that is what the tombstone is for.)
          duplicates_.fetch_add(1, std::memory_order_relaxed);
          return it->second.last_reply;
        }
        if (e.seqno < it->second.last_seqno) {
          // Per-session ordering means the client moved on; the old reply
          // has been dropped and can never be legitimately needed again.
          return kReplyStale;
        }
      }
      std::string reply = e.kind == EnvelopeKind::kRequest
                              ? inner_->apply(e.command)
                              : inner_->apply_read(e.command);
      sessions_[e.client] = SessionEntry{e.seqno, reply, false};
      return reply;
    }
    case EnvelopeKind::kClose: {
      const auto it = sessions_.find(e.client);
      if (it != sessions_.end() && !it->second.closed) {
        // Tombstone, don't erase: the final command's cached reply keeps
        // deduping late in-flight retries until the GC window passes.
        it->second.closed = true;
        pending_gc_.emplace_back(applies_, e.client);
      }
      return kReplyClosed;
    }
    case EnvelopeKind::kBarrier:
      return kReplyBarrier;
  }
  return kReplyBadEnvelope;
}

std::string SessionStateMachine::apply_read(const std::string& query) const {
  return inner_->apply_read(query);
}

std::string SessionStateMachine::snapshot() const {
  // Digest = FNV-1a over (dedup table, inner digest): two replicas agree
  // iff both the application state and the session table agree.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix_bytes = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xff;
    h *= 1099511628211ULL;
  };
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix_u64(applies_);
  mix_u64(sessions_.size());
  for (const auto& [client, entry] : sessions_) {
    mix_u64(client);
    mix_u64(entry.last_seqno);
    mix_bytes(entry.last_reply);
    mix_u64(entry.closed ? 1 : 0);
  }
  mix_u64(pending_gc_.size() - gc_head_);
  for (std::size_t i = gc_head_; i < pending_gc_.size(); ++i) {
    mix_u64(pending_gc_[i].first);
    mix_u64(pending_gc_[i].second);
  }
  mix_bytes(inner_->snapshot());
  common::Encoder enc;
  enc.put_u64(h);
  return enc.take();
}

std::string SessionStateMachine::serialize() const {
  // Canonical: the drained pending_gc_ prefix is excluded, so two machines
  // with equal logical state serialize equally regardless of when each
  // compacted.
  common::Encoder enc;
  enc.put_u64(applies_);
  enc.put_u64(sessions_.size());
  for (const auto& [client, entry] : sessions_) {
    enc.put_u64(client);
    enc.put_u64(entry.last_seqno);
    enc.put_string(entry.last_reply);
    enc.put_u8(entry.closed ? 1 : 0);
  }
  enc.put_u64(pending_gc_.size() - gc_head_);
  for (std::size_t i = gc_head_; i < pending_gc_.size(); ++i) {
    enc.put_u64(pending_gc_[i].first);
    enc.put_u64(pending_gc_[i].second);
  }
  enc.put_string(inner_->serialize());
  return enc.take();
}

bool SessionStateMachine::restore(const std::string& image) {
  common::Decoder dec(image);
  const std::uint64_t applies = dec.get_u64();
  const std::uint64_t count = dec.get_u64();
  std::map<ClientId, SessionEntry> next;
  for (std::uint64_t i = 0; i < count && dec.ok(); ++i) {
    const ClientId client = dec.get_u64();
    SessionEntry entry;
    entry.last_seqno = dec.get_u64();
    entry.last_reply = dec.get_string();
    entry.closed = dec.get_u8() != 0;
    if (!dec.ok()) break;
    next.emplace(client, std::move(entry));
  }
  const std::uint64_t gc_count = dec.get_u64();
  std::vector<std::pair<std::uint64_t, ClientId>> next_gc;
  for (std::uint64_t i = 0; i < gc_count && dec.ok(); ++i) {
    const std::uint64_t at = dec.get_u64();
    const ClientId client = dec.get_u64();
    next_gc.emplace_back(at, client);
  }
  const std::string inner_image = dec.get_string();
  if (!dec.done() || next.size() != count || next_gc.size() != gc_count) {
    return false;
  }
  if (!inner_->restore(inner_image)) return false;
  applies_ = applies;
  sessions_ = std::move(next);
  pending_gc_ = std::move(next_gc);
  gc_head_ = 0;
  return true;
}

}  // namespace zdc::rsm
