// Deterministic whole-service simulation: the session/read-index protocol
// stack of src/service driven at six-figure session counts through a
// modeled consensus fabric, with built-in exactly-once and linearizability
// checking.
//
// What is real and what is modeled: the SessionStateMachine dedup layer,
// the envelope framing, recovery::DurableRsm write-ahead applies over
// common::InMemoryStableStorage (kill-9 = drop_unsynced at the crash
// point) and the client retry discipline are the REAL production classes.
// The consensus fabric is modeled: an ordering core stamps every
// submission one-step (2 message delays — the paper's zero-degradation
// fast path, taken when no other submission lands within the collision
// window) or two-step (3 delays), appends to one global committed log, and
// per-replica apply pumps consume that log with jittered lag. Leadership
// is modeled as per-replica believed-leader views that converge on the
// lowest live replica after a per-replica detection delay; the lease gate
// (own barrier latest + settle wait + majority-endorsement grace) mirrors
// rsm::ServiceGroup::holds_lease with `settle_ms` standing in for the
// endorsement-streak wait, so `settle_ms >= lease_ms` is the safe
// configuration (see docs/SERVICE.md).
//
// The checkers are O(total ops): every write's reply carries its global
// apply index N ("ok:N") and every read's reply the apply frontier M it
// observed ("seen:M"), so real-time order violations reduce to (a) a
// running-max-invoke scan over completed writes sorted by N and (b) a
// frontier-threshold check per read (M must reach the largest index whose
// completion preceded the read's invocation). Double applies are counted
// inside the inner machine itself (a per-client applied-seqno high-water
// mark that survives serialize/restore, so replayed-from-WAL state keeps
// detecting retries that cross a crash).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace zdc::rsm {

struct ServiceSimConfig {
  std::uint32_t replicas = 3;
  /// Total client sessions to run to completion.
  std::uint64_t sessions = 1000;
  /// Closed-loop window: sessions open concurrently (ignored in open loop).
  std::uint32_t concurrency = 256;
  /// Open-loop mode: sessions arrive in a Poisson stream instead of a
  /// fixed window.
  bool open_loop = false;
  double arrivals_per_ms = 4.0;  ///< open-loop session arrival rate
  std::uint32_t writes_per_session = 2;
  std::uint32_t reads_per_session = 2;
  bool read_index = true;
  std::uint64_t seed = 1;

  // Fabric model.
  double delay_ms = 1.0;             ///< mean one-way message delay
  double jitter_ms = 0.3;            ///< uniform delay jitter width
  double collision_window_ms = 0.2;  ///< closer submissions fall to two-step
  double apply_jitter_ms = 0.5;      ///< per-replica apply lag
  double client_timeout_ms = 50.0;   ///< retry timer
  std::uint32_t max_attempts = 200;

  // Lease model (mirrors ServiceOptions + the believed-leader views).
  double lease_ms = 8.0;
  double detect_ms = 3.0;  ///< mean failure-detection delay per replica
  /// New-leader quiet period before acking/serving; the model's stand-in
  /// for the endorsement-streak wait. Safe iff >= lease_ms + detection
  /// spread.
  double settle_ms = 16.0;

  // Nemesis: crash/restart cycles, one replica down at a time.
  std::uint32_t crashes = 0;
  double crash_start_ms = 40.0;
  double crash_every_ms = 400.0;  ///< must exceed downtime_ms
  double downtime_ms = 150.0;

  // Durability model (DurableRsm over InMemoryStableStorage).
  std::uint64_t snapshot_every = 4096;
  std::uint64_t log_window = 8192;
  /// Session-close tombstone GC window (applies; see session.h).
  std::uint64_t gc_window = 8192;

  double time_limit_ms = 600000.0;
  /// Optional sink for client-latency histograms
  /// (zdc_service_client_latency_ms{path=write|fast_read|ordered_read}).
  obs::MetricsRegistry* metrics = nullptr;
};

struct ServiceSimReport {
  bool completed = false;  ///< every session ran to close before the limit
  std::uint64_t sessions_completed = 0;
  std::uint64_t writes_acked = 0;
  std::uint64_t reads_acked = 0;
  std::uint64_t fast_reads = 0;     ///< reads answered without a consensus
                                    ///< round (accepted replies)
  std::uint64_t ordered_reads = 0;  ///< downgraded/ordered reads (accepted)
  std::uint64_t one_step_commits = 0;
  std::uint64_t two_step_commits = 0;
  std::uint64_t retries = 0;
  /// Dedup hits across all replica incarnations (a restarted replica
  /// recounts the suffix it replays past its checkpoint).
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t crash_events = 0;
  std::uint64_t restart_events = 0;
  /// Peak dedup-table size observed (the GC bound: stays near the open-
  /// session window, not total session count).
  std::uint64_t max_open_sessions = 0;

  // Acceptance checks — all must be zero / true.
  std::uint64_t double_applies = 0;
  std::uint64_t lin_violations = 0;
  bool digests_converged = false;
  std::string first_violation;  ///< human-readable description, else empty

  double sim_ms = 0.0;  ///< simulated time consumed
  double write_mean_ms = 0.0;
  double fast_read_mean_ms = 0.0;
  double ordered_read_mean_ms = 0.0;
};

/// Runs one fully deterministic simulation: (seed, config) reproduces the
/// run bit-for-bit.
ServiceSimReport run_service_sim(const ServiceSimConfig& cfg);

}  // namespace zdc::rsm
