#include "service/service_group.h"

#include <chrono>
#include <utility>

#include "common/assert.h"

namespace zdc::rsm {

ServiceGroup::ServiceGroup(const zdc::RunOptions& opts, InnerFactory make_inner,
                           Config cfg)
    : n_(opts.group.n), cfg_(cfg), service_(opts.service) {
  ZDC_ASSERT_MSG(service_.sessions,
                 "ServiceGroup requires RunOptions::with_sessions()");
  ZDC_ASSERT(make_inner != nullptr);
  group_ = std::make_unique<recovery::ReplicaGroup>(
      opts,
      [make_inner = std::move(make_inner)](ProcessId) {
        return std::make_unique<SessionStateMachine>(make_inner());
      },
      cfg_.replicas);
  gates_.reserve(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    gates_.push_back(std::make_unique<Gate>());
  }
  // Observers attach before start(): no deliveries are in flight yet, so
  // touching the machines from this thread is race-free — and the WAL
  // replay inside ReplicaGroup's constructor already happened WITHOUT an
  // observer, which is what keeps replayed commands from producing
  // spurious client replies.
  for (ProcessId p = 0; p < n_; ++p) attach_observer(p);
  if (opts.metrics != nullptr) {
    fast_reads_ctr_ = &opts.metrics->counter("zdc_service_fast_reads_total");
    ordered_reads_ctr_ =
        &opts.metrics->counter("zdc_service_ordered_reads_total");
    writes_ctr_ = &opts.metrics->counter("zdc_service_writes_total");
  }
}

ServiceGroup::~ServiceGroup() { shutdown(); }

void ServiceGroup::start() {
  group_->start();
  if (service_.read_index) {
    for (ProcessId p = 0; p < n_; ++p) schedule_gate_poll(p);
  }
}

void ServiceGroup::shutdown() {
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  group_->shutdown();
}

Client ServiceGroup::client(ProcessId home) {
  const ClientId id = next_client_.fetch_add(1, std::memory_order_relaxed);
  return Client(this, id, n_ == 0 ? 0 : home % n_);
}

void ServiceGroup::crash(ProcessId p) { group_->crash(p); }

std::uint64_t ServiceGroup::restart(ProcessId p) {
  const std::uint64_t recovered = group_->restart(p);
  // The fresh incarnation replayed its WAL observer-less inside restart();
  // re-attach on ITS worker thread (applies run there — same-thread
  // confinement instead of a data race with in-flight catch-up applies)
  // and void the lease gate: a rebooted replica restarts its reign
  // bookkeeping from scratch.
  group_->cluster().network().schedule(p, 0.0, [this, p] {
    attach_observer(p);
    Gate& g = *gates_[p];
    g.was_leader = false;
    g.barrier_applied = false;
    // The recovered prefix is re-applied observer-less, so replay the
    // order-based gate input from scratch: no acks until this replica has
    // applied a barrier again (catch-up delivers the historical ones).
    g.last_barrier_owner = kNoProcess;
  });
  // The gate-poll chain died with the crashed incarnation (schedule()
  // no-ops on a crashed process); re-arm it.
  if (service_.read_index) schedule_gate_poll(p);
  return recovered;
}

ServiceGroup::PathStats ServiceGroup::stats() const {
  PathStats s;
  s.writes = writes_.load(std::memory_order_relaxed);
  s.fast_reads = fast_reads_.load(std::memory_order_relaxed);
  s.ordered_reads = ordered_reads_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  for (ProcessId p = 0; p < n_; ++p) {
    const auto* sm =
        static_cast<const SessionStateMachine*>(group_->machine(p));
    if (sm != nullptr) s.duplicates += sm->duplicates_suppressed();
  }
  return s;
}

void ServiceGroup::attach_observer(ProcessId p) {
  // The factory above built SessionStateMachines, so the downcast is exact.
  auto* sm = static_cast<SessionStateMachine*>(group_->machine(p));
  ZDC_ASSERT(sm != nullptr);
  sm->set_observer([this, p](const Envelope& e, const std::string& reply) {
    on_applied(p, e, reply);
  });
}

void ServiceGroup::on_applied(ProcessId p, const Envelope& e,
                              const std::string& reply) {
  // Runs on replica p's delivery (worker) thread, in apply order.
  switch (e.kind) {
    case EnvelopeKind::kBarrier: {
      ProcessId replica = kNoProcess;
      std::uint64_t reign = 0;
      if (decode_barrier_token(e.command, &replica, &reign)) {
        Gate& g = *gates_[p];
        // EVERY barrier moves the order-based gate: the moment another
        // replica's barrier enters the applied prefix, this replica stops
        // acknowledging (see the header argument).
        g.last_barrier_owner = replica;
        if (replica == p && reign == g.barrier_target) {
          g.barrier_applied = true;
        }
      }
      return;
    }
    case EnvelopeKind::kRequest:
    case EnvelopeKind::kRead:
    case EnvelopeKind::kClose: {
      if (service_.read_index) {
        // Lease-read soundness requires LEASE-HOLDER-ONLY replies: a client
        // may only observe a command's completion once the lease holder has
        // applied it, so the lease holder's state always covers every
        // acknowledged command (see the header argument — without this, a
        // fast read at a lagging leader could miss a write a quicker
        // follower already acknowledged). Everyone else stays silent;
        // clients retry until the holder's apply answers them.
        if (!holds_lease(p)) return;
      }
      const Key key{e.client, e.kind == EnvelopeKind::kClose ? 0 : e.seqno};
      common::MutexLock lock(mu_);
      const auto it = pending_.find(key);
      if (it != pending_.end() && !it->second.done) {
        it->second.done = true;
        it->second.reply = reply;
        cv_.notify_all();
      }
      return;
    }
    case EnvelopeKind::kBare:
      return;
  }
}

void ServiceGroup::schedule_gate_poll(ProcessId p) {
  // Self-rescheduling worker timer, same pattern as ReplicaGroup's ack
  // beacon: dies with a crashed incarnation (schedule() no-ops while
  // crashed) and is re-armed by restart().
  group_->cluster().network().schedule(p, cfg_.gate_poll_ms, [this, p] {
    if (stopping_.load(std::memory_order_acquire)) return;
    gate_poll(p);
    schedule_gate_poll(p);
  });
}

bool ServiceGroup::holds_lease(ProcessId p) const {
  // Worker thread p only (gate state + endorsement clocks are confined).
  const Gate& g = *gates_[p];
  const auto& fd = group_->cluster().node(p).failure_detector();
  return !group_->recovering(p) && fd.omega().leader() == p &&
         g.last_barrier_owner == p &&
         fd.ms_since_quorum_endorsement() < service_.lease_ms &&
         fd.quorum_endorsement_streak_ms() >= service_.lease_ms;
}

void ServiceGroup::gate_poll(ProcessId p) {
  // Worker thread p. Reign bookkeeping: on every leadership acquisition,
  // open a new reign and a-broadcast its barrier; lease reads start only
  // once that barrier has applied locally (see the header argument).
  Gate& g = *gates_[p];
  auto& node = group_->cluster().node(p);
  const bool leader_now = node.failure_detector().omega().leader() == p &&
                          !group_->recovering(p);
  if (leader_now && !g.was_leader) {
    ++g.reign;
    g.barrier_target = g.reign;
    g.barrier_applied = false;
    node.a_broadcast(frame_barrier(p, g.reign));
  }
  g.was_leader = leader_now;
}

std::string Client::execute(std::string command) {
  ++seqno_;
  svc_->writes_.fetch_add(1, std::memory_order_relaxed);
  if (svc_->writes_ctr_ != nullptr) svc_->writes_ctr_->inc();
  const std::string framed = frame_request(id_, seqno_, std::move(command));
  return svc_->await_reply(ServiceGroup::Key{id_, seqno_}, home_, framed);
}

std::string Client::read(std::string query) {
  return svc_->submit_read(*this, query);
}

void Client::close_session() {
  const std::string framed = frame_close(id_);
  static_cast<void>(
      svc_->await_reply(ServiceGroup::Key{id_, 0}, home_, framed));
}

std::string ServiceGroup::await_reply(const Key& key, ProcessId home,
                                      const std::string& framed) {
  {
    common::MutexLock lock(mu_);
    pending_[key] = Pending{};
  }
  const auto wait_slice =
      std::chrono::duration<double, std::milli>(cfg_.client_retry_ms);
  for (int attempt = 0; attempt < cfg_.client_max_attempts; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    // Rotate the home replica on retry: the original may be crashed or
    // partitioned. Resubmitting the SAME envelope is safe — dedup turns
    // the duplicate into a cached-reply lookup.
    const ProcessId target = (home + static_cast<ProcessId>(attempt)) % n_;
    group_->submit(target, framed);
    common::MutexLock lock(mu_);
    const auto it = pending_.find(key);
    while (!it->second.done && !stopping_.load(std::memory_order_acquire)) {
      // One timed slice per attempt; cv_status::timeout => resubmit. (A
      // spurious wakeup re-arms the full slice — harmless, bounded by real
      // notifies.)
      if (cv_.wait_for(lock.inner(), wait_slice) == std::cv_status::timeout) {
        break;
      }
    }
    if (it->second.done) {
      std::string reply = std::move(it->second.reply);
      pending_.erase(it);
      return reply;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  common::MutexLock lock(mu_);
  pending_.erase(key);
  return "error:timeout";
}

std::string ServiceGroup::submit_read(Client& c, const std::string& query) {
  ++c.seqno_;
  const Key key{c.id_, c.seqno_};
  if (!service_.read_index) {
    ordered_reads_.fetch_add(1, std::memory_order_relaxed);
    if (ordered_reads_ctr_ != nullptr) ordered_reads_ctr_->inc();
    return await_reply(key, c.home_, frame_read(c.id_, c.seqno_, query));
  }
  {
    common::MutexLock lock(mu_);
    pending_[key] = Pending{};
  }
  const auto wait_slice =
      std::chrono::duration<double, std::milli>(cfg_.client_retry_ms);
  for (int attempt = 0; attempt < cfg_.client_max_attempts; ++attempt) {
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    // Try the leader first (its worker evaluates the lease gate); rotate on
    // timeout like writes do.
    ProcessId candidate =
        group_->cluster().node(c.home_).failure_detector().omega().leader();
    if (candidate == kNoProcess) candidate = c.home_;
    candidate = (candidate + static_cast<ProcessId>(attempt)) % n_;
    group_->cluster().network().schedule(
        candidate, 0.0, [this, candidate, key, query] {
          // Worker thread `candidate`: the only thread that may read this
          // replica's gate, endorsement clocks and applied state.
          const Gate& g = *gates_[candidate];
          const bool lease_ok = holds_lease(candidate) && g.barrier_applied;
          if (lease_ok) {
            // THE fast path: reply from applied state, zero consensus
            // rounds, zero message delays beyond the client hop.
            const core::StateMachine* m = group_->machine(candidate);
            std::string reply = m->apply_read(query);
            fast_reads_.fetch_add(1, std::memory_order_relaxed);
            if (fast_reads_ctr_ != nullptr) fast_reads_ctr_->inc();
            common::MutexLock lock(mu_);
            const auto it = pending_.find(key);
            if (it != pending_.end() && !it->second.done) {
              it->second.done = true;
              it->second.reply = std::move(reply);
              cv_.notify_all();
            }
          } else {
            // Downgrade: order the read like a write. Linearizable without
            // any lease assumption, one consensus round slower.
            ordered_reads_.fetch_add(1, std::memory_order_relaxed);
            if (ordered_reads_ctr_ != nullptr) ordered_reads_ctr_->inc();
            group_->cluster().node(candidate).a_broadcast(
                frame_read(key.first, key.second, query));
          }
        });
    common::MutexLock lock(mu_);
    const auto it = pending_.find(key);
    while (!it->second.done && !stopping_.load(std::memory_order_acquire)) {
      if (cv_.wait_for(lock.inner(), wait_slice) == std::cv_status::timeout) {
        break;
      }
    }
    if (it->second.done) {
      std::string reply = std::move(it->second.reply);
      pending_.erase(it);
      return reply;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  common::MutexLock lock(mu_);
  pending_.erase(key);
  return "error:timeout";
}

}  // namespace zdc::rsm
