// Client-session request framing and server-side dedup for exactly-once
// command application (the rsm_client discipline: every request carries a
// client id and a per-client sequence number; the replicated state machine
// remembers, per client, the last seqno it executed and that command's
// reply).
//
// Why this gives exactly-once: a client retries a request (same client id,
// same seqno) until it hears a reply, so the same envelope may enter the
// a-delivery total order many times. Every replica applies the stream
// through a SessionStateMachine, which executes a (client, seqno) pair at
// most once — later copies return the cached reply without touching the
// inner machine. Because the dedup table is ordinary machine state, it is
// carried by serialize()/restore() and therefore survives crash/restart
// through DurableRsm snapshots and WAL replay: a replica that reboots
// mid-retry still refuses the duplicate.
//
// Dedup GC rule: the table holds ONE entry per open session (last seqno +
// last reply — per-session ordering means a client has at most one
// outstanding command, so nothing older can ever be asked for again). A
// session close TOMBSTONES the entry rather than erasing it: even though
// the client only closes after its final reply arrived, a timed-out retry
// of that final command may still be in flight and be ordered AFTER the
// close — erasing eagerly would let that duplicate re-apply. Tombstones
// are erased once the apply index has advanced `gc_window` entries past
// the close (an order-based rule, so every replica GCs identically), which
// keeps the table bounded by open sessions plus the closes inside one
// window while preserving exactly-once for any duplicate ordered within
// it. gc_window is the deterministic stand-in for "no retry stays in
// flight across that much committed traffic"; docs/SERVICE.md discusses
// the bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/rsm.h"

namespace zdc::rsm {

/// Session identifier. Client ids must be unique across the system's
/// lifetime (the sim and ServiceGroup hand them out from a counter).
using ClientId = std::uint64_t;

enum class EnvelopeKind : std::uint8_t {
  kBare = 0,     ///< unframed passthrough: no session, no dedup
  kRequest = 1,  ///< session write: dedup on (client, seqno), apply()
  kRead = 2,     ///< consensus-ordered read: dedup like kRequest, apply_read()
  kClose = 3,    ///< session close: dedup GC for this client
  kBarrier = 4,  ///< leader reign barrier no-op (see service_group.h)
};

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::kBare;
  ClientId client = 0;
  std::uint64_t seqno = 0;
  std::string command;  ///< command bytes / read query / barrier token
};

/// Wire format (canonical): u8 kind, u64 client, u64 seqno, string command.
std::string encode_envelope(const Envelope& e);
/// Returns false on malformed bytes (out is unspecified).
[[nodiscard]] bool decode_envelope(const std::string& bytes, Envelope* out);

/// Convenience constructors for the four framed kinds.
std::string frame_request(ClientId client, std::uint64_t seqno,
                          std::string command);
std::string frame_read(ClientId client, std::uint64_t seqno,
                       std::string query);
std::string frame_close(ClientId client);
/// The barrier token encodes who opened the reign ((replica, reign) pair);
/// ServiceGroup matches its own barriers by decoding the token back.
std::string frame_barrier(ProcessId replica, std::uint64_t reign);
[[nodiscard]] bool decode_barrier_token(const std::string& token,
                                        ProcessId* replica,
                                        std::uint64_t* reign);

/// Control-reply grammar (inner-machine replies pass through verbatim):
///   duplicate with an older seqno      -> "error:stale"
///   undecodable envelope               -> "error:bad_envelope"
///   kClose                             -> "ok:closed"
///   kBarrier                           -> "ok:barrier"
inline constexpr const char* kReplyStale = "error:stale";
inline constexpr const char* kReplyBadEnvelope = "error:bad_envelope";
inline constexpr const char* kReplyClosed = "ok:closed";
inline constexpr const char* kReplyBarrier = "ok:barrier";

/// The session-dedup wrapper. Deterministic by construction: its state is
/// (inner machine state, dedup table), both driven only by the command
/// stream, so it composes with DurableRsm / snapshot transfer exactly like
/// any other StateMachine.
///
/// Threading: a plain StateMachine — all apply/serialize/restore calls on
/// the owning replica's delivery thread. The observer fires synchronously
/// inside apply(), in delivery order, and is NOT fired by restore() or by
/// WAL replay performed before the observer is attached (ServiceGroup
/// attaches it only after recovery completes, which is what keeps replayed
/// commands from producing spurious client replies).
class SessionStateMachine final : public core::StateMachine {
 public:
  /// (envelope, reply) for every applied command, including duplicates
  /// (reply = cached) and control envelopes.
  using Observer = std::function<void(const Envelope&, const std::string&)>;

  /// `gc_window`: applies a close-tombstone survives before its entry is
  /// erased (see the header GC rule). Part of the replicated state-machine
  /// definition — every replica must use the same value.
  explicit SessionStateMachine(std::unique_ptr<core::StateMachine> inner,
                               std::uint64_t gc_window = 8192);

  std::string apply(const std::string& command) override;
  [[nodiscard]] std::string snapshot() const override;
  [[nodiscard]] std::string serialize() const override;
  [[nodiscard]] bool restore(const std::string& image) override;
  /// Raw (unframed) read-only query against the inner machine — the
  /// read-index fast path; never touches the dedup table.
  [[nodiscard]] std::string apply_read(const std::string& query) const override;

  void set_observer(Observer fn) { observer_ = std::move(fn); }

  [[nodiscard]] const core::StateMachine& inner() const { return *inner_; }
  [[nodiscard]] core::StateMachine& inner() { return *inner_; }

  /// Open-session count == dedup-table size (the GC bound).
  [[nodiscard]] std::size_t open_sessions() const { return sessions_.size(); }
  /// Duplicates suppressed on THIS replica (diagnostic; deliberately not
  /// part of serialized state — replicas may replay different prefixes).
  /// Atomic so harness threads may poll it mid-run.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_.load(std::memory_order_relaxed);
  }

 private:
  struct SessionEntry {
    std::uint64_t last_seqno = 0;
    std::string last_reply;
    /// Close tombstone: still deduping, awaiting order-based GC.
    bool closed = false;
  };

  std::string apply_envelope(const Envelope& e);

  std::unique_ptr<core::StateMachine> inner_;
  const std::uint64_t gc_window_;
  /// std::map (not unordered): deterministic serialize() iteration order is
  /// part of the canonical-encoding contract.
  std::map<ClientId, SessionEntry> sessions_;
  /// Commands applied so far — the clock the GC rule is measured on.
  std::uint64_t applies_ = 0;
  /// (apply index of the close, client) in close order; drained by apply()
  /// once aged past gc_window_. Deque semantics but kept as a vector with a
  /// head cursor for trivial canonical serialization.
  std::vector<std::pair<std::uint64_t, ClientId>> pending_gc_;
  std::size_t gc_head_ = 0;
  Observer observer_;
  std::atomic<std::uint64_t> duplicates_{0};
};

}  // namespace zdc::rsm
