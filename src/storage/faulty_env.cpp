#include "storage/faulty_env.h"

#include <utility>

#include "common/assert.h"
#include "fault/corrupt.h"

namespace zdc::storage {

/// Wraps the base file so every append/sync routes through the env's fault
/// bookkeeping (counters, unsynced-tail tracking, scripted crash points).
class FaultyEnv::File final : public WritableFile {
 public:
  File(FaultyEnv& env, std::string path, std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status append(std::string_view bytes) override {
    common::MutexLock lock(env_.mu_);
    return env_.append_locked(path_, bytes, *base_);
  }
  Status sync() override {
    common::MutexLock lock(env_.mu_);
    // zdc-analyze: allow(blocking-under-lock): the fault harness serializes every storage op under mu_ by design — crash points must see a frozen op stream; harness runs use the in-memory Env, so the "fsync" is a counter bump
    return env_.sync_locked(path_, *base_);
  }

 private:
  FaultyEnv& env_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
};

void FaultyEnv::arm(fault::StorageFaultPlan plan) {
  common::MutexLock lock(mu_);
  plan_ = std::move(plan);
  appends_ = syncs_ = reads_ = 0;
}

const fault::StorageFaultPoint* FaultyEnv::point_at(
    fault::StorageFaultKind kind, std::uint64_t index) const {
  for (const fault::StorageFaultPoint& p : plan_.points) {
    if (p.kind == kind && p.op_index == index) return &p;
  }
  return nullptr;
}

Status FaultyEnv::append_locked(const std::string& path,
                                std::string_view bytes,
                                WritableFile& base_file) {
  if (crashed_) return Status::crashed("append " + path);
  ++appends_;
  last_write_path_ = path;
  // The bytes reach the simulated page cache first (reads see them), then
  // the crash point decides how much of the cache survives.
  files_[path].unsynced.append(bytes.data(), bytes.size());
  const Status forward = base_file.append(bytes);
  if (!forward.is_ok()) return forward;
  if (const fault::StorageFaultPoint* p =
          point_at(fault::StorageFaultKind::kCrashAtWrite, appends_)) {
    crash_locked(p->keep, p->torn_bytes, &path);
    return Status::crashed("scripted crash during append " + path);
  }
  return Status::ok();
}

Status FaultyEnv::sync_locked(const std::string& path,
                              WritableFile& base_file) {
  if (crashed_) return Status::crashed("sync " + path);
  ++syncs_;
  const fault::StorageFaultPoint* p =
      point_at(fault::StorageFaultKind::kCrashAtSync, syncs_);
  if (p != nullptr && !p->after_sync) {
    // Died during the fsync: nothing of the unsynced tail is promised.
    crash_locked(fault::CrashKeep::kNone, 0, nullptr);
    return Status::crashed("scripted crash during sync " + path);
  }
  const Status forward = base_file.sync();
  if (!forward.is_ok()) return forward;
  FileState& state = files_[path];
  state.synced_size += state.unsynced.size();
  state.unsynced.clear();
  if (p != nullptr) {  // after_sync: the data is durable, the process is not
    crash_locked(fault::CrashKeep::kNone, 0, nullptr);
    return Status::crashed("scripted crash after sync " + path);
  }
  return Status::ok();
}

void FaultyEnv::crash_locked(fault::CrashKeep keep, std::uint64_t torn_bytes,
                             const std::string* torn_path) {
  crashed_ = true;
  for (auto& [path, state] : files_) {
    if (keep == fault::CrashKeep::kAll) {
      // Page cache flushed: everything written survives the process.
      state.synced_size += state.unsynced.size();
      state.unsynced.clear();
      continue;
    }
    std::uint64_t survive = 0;
    if (keep == fault::CrashKeep::kTorn && torn_path != nullptr &&
        path == *torn_path) {
      survive = std::min<std::uint64_t>(torn_bytes, state.unsynced.size());
    }
    // A failed truncate would silently leave more bytes "surviving" the
    // crash than the fault plan scripted — recovery tests would then pass
    // against a state no real crash can produce. Found by zdc_analyze
    // (discarded-status); the base env is in-memory, so failure here is a
    // harness invariant violation, not an I/O outcome to latch.
    const Status truncated =
        base_.truncate_file(path, state.synced_size + survive);
    ZDC_ASSERT_MSG(truncated.is_ok(),
                   "FaultyEnv crash point failed to truncate the unsynced "
                   "tail; simulated crash state would diverge from the plan");
    state.synced_size += survive;
    state.unsynced.clear();
  }
}

void FaultyEnv::crash_now(fault::CrashKeep keep, std::uint64_t torn_bytes) {
  common::MutexLock lock(mu_);
  if (crashed_) return;
  const std::string torn_path = last_write_path_;
  crash_locked(keep, torn_bytes, torn_path.empty() ? nullptr : &torn_path);
}

void FaultyEnv::recover() {
  common::MutexLock lock(mu_);
  crashed_ = false;
  // Whatever the crash left on the media is the new durable baseline; the
  // FileState entries already reflect it (synced_size updated, tails gone).
}

bool FaultyEnv::crashed() const {
  common::MutexLock lock(mu_);
  return crashed_;
}

std::uint64_t FaultyEnv::appends() const {
  common::MutexLock lock(mu_);
  return appends_;
}
std::uint64_t FaultyEnv::syncs() const {
  common::MutexLock lock(mu_);
  return syncs_;
}
std::uint64_t FaultyEnv::reads() const {
  common::MutexLock lock(mu_);
  return reads_;
}

Status FaultyEnv::create_dir(const std::string& dir) {
  {
    common::MutexLock lock(mu_);
    if (crashed_) return Status::crashed("create_dir " + dir);
  }
  return base_.create_dir(dir);
}

Status FaultyEnv::list_dir(const std::string& dir,
                           std::vector<std::string>* names) {
  return base_.list_dir(dir, names);
}

bool FaultyEnv::file_exists(const std::string& path) {
  return base_.file_exists(path);
}

Status FaultyEnv::read_file(const std::string& path, std::string* contents) {
  const Status s = base_.read_file(path, contents);
  if (!s.is_ok()) return s;
  common::MutexLock lock(mu_);
  ++reads_;
  if (const fault::StorageFaultPoint* p =
          point_at(fault::StorageFaultKind::kFlipOnRead, reads_)) {
    fault::bit_flip(*contents, p->flip_byte, p->flip_bit);
  }
  return Status::ok();
}

Status FaultyEnv::new_writable(const std::string& path, bool truncate,
                               std::unique_ptr<WritableFile>* out) {
  common::MutexLock lock(mu_);
  if (crashed_) return Status::crashed("open " + path);
  std::unique_ptr<WritableFile> base_file;
  const Status s = base_.new_writable(path, truncate, &base_file);
  if (!s.is_ok()) return s;
  FileState& state = files_[path];
  if (truncate) {
    state = FileState{};
  } else if (state.synced_size == 0 && state.unsynced.empty()) {
    // First sighting of a pre-existing file: its on-media bytes are the
    // durable baseline (they were there before this incarnation).
    std::string contents;
    if (base_.read_file(path, &contents).is_ok()) {
      state.synced_size = contents.size();
    }
  }
  *out = std::make_unique<File>(*this, path, std::move(base_file));
  return Status::ok();
}

Status FaultyEnv::truncate_file(const std::string& path, std::uint64_t size) {
  common::MutexLock lock(mu_);
  if (crashed_) return Status::crashed("truncate " + path);
  const Status s = base_.truncate_file(path, size);
  if (!s.is_ok()) return s;
  // Truncation during recovery rewrites the baseline: the kept prefix is
  // what the reopened log builds on.
  FileState& state = files_[path];
  state.synced_size = std::min<std::uint64_t>(state.synced_size, size);
  state.unsynced.clear();
  return Status::ok();
}

Status FaultyEnv::rename_file(const std::string& from, const std::string& to) {
  common::MutexLock lock(mu_);
  if (crashed_) return Status::crashed("rename " + from);
  const Status s = base_.rename_file(from, to);
  if (!s.is_ok()) return s;
  const auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = std::move(it->second);
    files_.erase(it);
  }
  return Status::ok();
}

Status FaultyEnv::remove_file(const std::string& path) {
  common::MutexLock lock(mu_);
  if (crashed_) return Status::crashed("remove " + path);
  const Status s = base_.remove_file(path);
  if (s.is_ok()) files_.erase(path);
  return Status::ok();
}

}  // namespace zdc::storage
