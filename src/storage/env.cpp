#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace zdc::storage {

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// ---------------------------------------------------------------------------
// MemEnv

class MemEnv::MemFile final : public WritableFile {
 public:
  MemFile(MemEnv& env, std::string path) : env_(env), path_(std::move(path)) {}

  Status append(std::string_view bytes) override {
    common::MutexLock lock(env_.mu_);
    env_.files_[path_].append(bytes.data(), bytes.size());
    return Status::ok();
  }
  Status sync() override { return Status::ok(); }

 private:
  MemEnv& env_;
  const std::string path_;
};

Status MemEnv::create_dir(const std::string&) { return Status::ok(); }

Status MemEnv::list_dir(const std::string& dir,
                        std::vector<std::string>* names) {
  names->clear();
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  common::MutexLock lock(mu_);
  for (const auto& [path, contents] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names->push_back(rest);
  }
  return Status::ok();  // std::map iteration is already sorted
}

bool MemEnv::file_exists(const std::string& path) {
  common::MutexLock lock(mu_);
  return files_.count(path) != 0;
}

Status MemEnv::read_file(const std::string& path, std::string* contents) {
  common::MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found(path);
  *contents = it->second;
  return Status::ok();
}

Status MemEnv::new_writable(const std::string& path, bool truncate,
                            std::unique_ptr<WritableFile>* out) {
  {
    common::MutexLock lock(mu_);
    std::string& contents = files_[path];  // creates if missing
    if (truncate) contents.clear();
  }
  *out = std::make_unique<MemFile>(*this, path);
  return Status::ok();
}

Status MemEnv::truncate_file(const std::string& path, std::uint64_t size) {
  common::MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::not_found(path);
  if (it->second.size() > size) it->second.resize(size);
  return Status::ok();
}

Status MemEnv::rename_file(const std::string& from, const std::string& to) {
  common::MutexLock lock(mu_);
  const auto it = files_.find(from);
  if (it == files_.end()) return Status::not_found(from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::ok();
}

Status MemEnv::remove_file(const std::string& path) {
  common::MutexLock lock(mu_);
  if (files_.erase(path) == 0) return Status::not_found(path);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// PosixEnv

namespace {

Status errno_status(const std::string& what) {
  return Status::io_error(what + ": " + std::strerror(errno));
}

class PosixFile final : public WritableFile {
 public:
  explicit PosixFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status append(std::string_view bytes) override {
    const char* data = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status("write " + path_);
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::ok();
  }

  Status sync() override {
#if defined(__APPLE__)
    if (::fsync(fd_) != 0) return errno_status("fsync " + path_);
#else
    if (::fdatasync(fd_) != 0) return errno_status("fdatasync " + path_);
#endif
    return Status::ok();
  }

 private:
  int fd_;
  const std::string path_;
};

}  // namespace

Status PosixEnv::create_dir(const std::string& dir) {
  // mkdir -p: create each component, tolerating ones that already exist.
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i);
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return errno_status("mkdir " + partial);
    }
  }
  if (!dir.empty() && ::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return errno_status("mkdir " + dir);
  }
  return Status::ok();
}

Status PosixEnv::list_dir(const std::string& dir,
                          std::vector<std::string>* names) {
  names->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return errno_status("opendir " + dir);
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(name);
  }
  ::closedir(d);
  std::sort(names->begin(), names->end());
  return Status::ok();
}

bool PosixEnv::file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status PosixEnv::read_file(const std::string& path, std::string* contents) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::not_found(path);
    return errno_status("open " + path);
  }
  contents->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_status("read " + path);
    }
    if (n == 0) break;
    contents->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return Status::ok();
}

Status PosixEnv::new_writable(const std::string& path, bool truncate,
                              std::unique_ptr<WritableFile>* out) {
  const int flags =
      O_CREAT | O_WRONLY | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return errno_status("open " + path);
  *out = std::make_unique<PosixFile>(fd, path);
  return Status::ok();
}

Status PosixEnv::truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return errno_status("truncate " + path);
  }
  return Status::ok();
}

Status PosixEnv::rename_file(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return errno_status("rename " + from);
  }
  return Status::ok();
}

Status PosixEnv::remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return errno_status("unlink " + path);
  return Status::ok();
}

Env& posix_env() {
  static PosixEnv env;
  return env;
}

}  // namespace zdc::storage
