// Segmented write-ahead log with CRC32C-framed records.
//
// On-media format (docs/STORAGE.md has the full spec):
//
//   segment file  wal-<index>.log   (index is a zero-padded decimal u64)
//   record frame  [u32 crc][u32 len][len payload bytes]
//
// Integers are little-endian (common/codec.h convention); `crc` is CRC32C
// over the len field and the payload, so a frame vouches for its own length.
// A segment is a concatenation of frames; the writer rolls to the next index
// once a segment reaches segment_bytes (a single over-sized record may make
// a segment exceed the limit — frames are never split across segments).
//
// Recovery scan (the torn-tail rule):
//   - every NON-final segment must parse completely; any damage is
//     Status::corruption — the log was synced past it, so a crash cannot
//     explain the damage and silently dropping data is not an option;
//   - the FINAL segment parses until the first bad frame at offset X, then
//     scans forward for any complete valid-CRC frame. Finding one means the
//     damage is mid-segment (corruption, fail loudly); finding none means X
//     starts a torn tail — exactly what an interrupted append leaves — and
//     the segment is truncated to X.
//
// sync() is the durability barrier and the unit the paper's evaluation
// prices: it forwards to the file only when unsynced appends exist, so N
// appends + one sync() is one fsync (group commit). roll() syncs the old
// segment before switching — otherwise a crash could tear a non-final
// segment, which recovery would correctly refuse to repair.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/env.h"

namespace zdc::storage {

struct WalOptions {
  /// Roll to a fresh segment once the current one reaches this size.
  std::uint64_t segment_bytes = 64 * 1024;
};

/// What the recovery scan found and did; tests assert on this.
struct WalRecoveryInfo {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t torn_bytes_dropped = 0;  ///< bytes truncated off the tail
  bool tail_truncated = false;
};

class Wal {
 public:
  /// Replay callback: called once per recovered record, in log order, with
  /// the segment the record lives in. A non-ok return aborts the open.
  using ReplayFn =
      std::function<Status(std::uint64_t segment, std::string_view payload)>;

  /// Opens (creating if needed) the log in `dir`, replays every durable
  /// record through `replay`, applies the torn-tail rule, and positions the
  /// writer at the tail. `min_segment` skips segments below it (the caller's
  /// snapshot already covers them — see durable_storage.h). `env` must
  /// outlive the returned Wal.
  [[nodiscard]] static Status open(Env& env, std::string dir,
                                   WalOptions options,
                                   std::uint64_t min_segment,
                                   const ReplayFn& replay,
                                   std::unique_ptr<Wal>* out,
                                   WalRecoveryInfo* info = nullptr);

  /// Appends one framed record (rolling first if the segment is full).
  /// Durable only after the next sync().
  [[nodiscard]] Status append(std::string_view payload);

  /// Durability barrier. No-op (and not counted) when nothing is unsynced.
  [[nodiscard]] Status sync();

  /// Syncs the current segment and switches the writer to the next index.
  [[nodiscard]] Status roll();

  /// Deletes every segment with index < `segment`. The caller must hold a
  /// durable snapshot covering them (wrong order loses data; see compact()).
  [[nodiscard]] Status drop_segments_below(std::uint64_t segment);

  [[nodiscard]] std::uint64_t current_segment() const { return segment_; }
  /// Number of fsyncs issued — the recovery-cost metric.
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }
  /// Total framed bytes appended since open (compaction-trigger input).
  [[nodiscard]] std::uint64_t appended_bytes() const { return appended_bytes_; }
  [[nodiscard]] bool dirty() const { return dirty_; }

  /// "wal-<zero-padded index>.log" / its inverse (false if not a segment).
  static std::string segment_name(std::uint64_t index);
  static bool parse_segment_name(const std::string& name, std::uint64_t* index);

  /// Frames `payload` exactly as append() writes it (snapshot files reuse
  /// the frame so they are self-checking too).
  static std::string encode_frame(std::string_view payload);

  /// Parses the frame at `pos`. On success advances `*next_pos` past it and
  /// points `*payload` into `data`. Returns false on truncation or CRC
  /// mismatch — the scan's torn-tail logic decides what that means.
  static bool parse_frame(std::string_view data, std::uint64_t pos,
                          std::string_view* payload, std::uint64_t* next_pos);

 private:
  Wal(Env& env, std::string dir, WalOptions options) noexcept
      : env_(env), dir_(std::move(dir)), options_(options) {}

  /// Opens the writer on segment `segment_` (append mode).
  [[nodiscard]] Status open_writer(bool truncate);

  Env& env_;
  const std::string dir_;
  const WalOptions options_;

  std::uint64_t segment_ = 0;
  std::unique_ptr<WritableFile> file_;
  std::uint64_t segment_size_ = 0;
  bool dirty_ = false;
  std::uint64_t syncs_ = 0;
  std::uint64_t appended_bytes_ = 0;
};

}  // namespace zdc::storage
