// Fault-injecting Env: the layer that makes durability failures first-class.
//
// FaultyEnv wraps any base Env and models what a kill -9 or power cut leaves
// on the media: per file it tracks the synced size (bytes whose sync()
// completed) and the unsynced tail (bytes merely append()ed). A crash —
// scripted via a fault::StorageFaultPlan or injected directly by the fuzz
// loop — truncates every file back to its synced size, optionally keeping a
// torn prefix of the triggering file's unsynced tail, and from then on every
// mutating operation fails with Status::crashed (the process is dead).
// recover() models the reboot: whatever survived on the media becomes the
// new durable baseline and the env accepts writes again.
//
// Scripted points fire on deterministic operation counts (append #k, sync
// #k, read #k — counted across incarnations), so the same plan slices the
// same byte wherever it runs. See fault/storage_fault.h for the catalog and
// the text syntax, docs/STORAGE.md for the recovery rules the WAL must
// uphold under each point.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "fault/storage_fault.h"
#include "storage/env.h"

namespace zdc::storage {

class FaultyEnv final : public Env {
 public:
  /// `base` must outlive this env; it holds the simulated media.
  explicit FaultyEnv(Env& base) : base_(base) {}

  /// Installs the scripted fault points and resets the operation counters.
  void arm(fault::StorageFaultPlan plan);

  /// Injects a crash immediately (the fuzz loop's entry point): every file
  /// loses its unsynced tail per `keep`; with CrashKeep::kTorn the file most
  /// recently appended to keeps the first `torn_bytes` of its tail.
  void crash_now(fault::CrashKeep keep, std::uint64_t torn_bytes = 0);

  /// Reboot: the surviving bytes become the durable baseline and the env
  /// accepts operations again. Scripted points keep counting across the
  /// recovery (operation indices are per-plan, not per-incarnation).
  void recover();

  [[nodiscard]] bool crashed() const;

  /// Operation counters (1-based indices the plan grammar refers to).
  [[nodiscard]] std::uint64_t appends() const;
  [[nodiscard]] std::uint64_t syncs() const;
  [[nodiscard]] std::uint64_t reads() const;

  // Env interface. Mutating calls fail with Status::crashed while crashed.
  [[nodiscard]] Status create_dir(const std::string& dir) override;
  [[nodiscard]] Status list_dir(const std::string& dir,
                                std::vector<std::string>* names) override;
  [[nodiscard]] bool file_exists(const std::string& path) override;
  [[nodiscard]] Status read_file(const std::string& path,
                                 std::string* contents) override;
  [[nodiscard]] Status new_writable(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) override;
  [[nodiscard]] Status truncate_file(const std::string& path,
                                     std::uint64_t size) override;
  [[nodiscard]] Status rename_file(const std::string& from,
                                   const std::string& to) override;
  [[nodiscard]] Status remove_file(const std::string& path) override;

 private:
  class File;

  struct FileState {
    std::uint64_t synced_size = 0;  ///< bytes guaranteed to survive a crash
    std::string unsynced;           ///< appended since the last sync
  };

  [[nodiscard]] Status append_locked(const std::string& path,
                                     std::string_view bytes,
                                     WritableFile& base_file)
      ZDC_REQUIRES(mu_);
  [[nodiscard]] Status sync_locked(const std::string& path,
                                   WritableFile& base_file)
      ZDC_REQUIRES(mu_);
  void crash_locked(fault::CrashKeep keep, std::uint64_t torn_bytes,
                    const std::string* torn_path) ZDC_REQUIRES(mu_);
  /// First scripted point of `kind` at the given 1-based index, if any.
  [[nodiscard]] const fault::StorageFaultPoint* point_at(
      fault::StorageFaultKind kind, std::uint64_t index) const
      ZDC_REQUIRES(mu_);

  Env& base_;
  mutable common::Mutex mu_;
  fault::StorageFaultPlan plan_ ZDC_GUARDED_BY(mu_);
  bool crashed_ ZDC_GUARDED_BY(mu_) = false;
  std::uint64_t appends_ ZDC_GUARDED_BY(mu_) = 0;
  std::uint64_t syncs_ ZDC_GUARDED_BY(mu_) = 0;
  std::uint64_t reads_ ZDC_GUARDED_BY(mu_) = 0;
  std::map<std::string, FileState> files_ ZDC_GUARDED_BY(mu_);
  std::string last_write_path_ ZDC_GUARDED_BY(mu_);
};

}  // namespace zdc::storage
