// Durable StableStorage backed by the segmented WAL.
//
// This is the disk-backed implementation the interface comment in
// common/stable_storage.h promises: put() appends a CRC-framed key/value
// record to the WAL and issues the durability barrier before returning, so a
// recovering Paxos acceptor really does find its promises after kill -9. The
// put_nosync()/sync() split exposes group commit — N staged records ride one
// fsync — and sync_count() stays the recovery-cost metric the paper's
// evaluation prices (WAL fsyncs plus snapshot fsyncs).
//
// Compaction (snapshot + log truncation) keeps recovery O(state), not
// O(history):
//   1. roll the WAL to a fresh segment C;
//   2. write the full key/value map as one CRC-framed blob to snap-<C>.tmp,
//      sync it, and atomically rename to snap-<C> — the rename is the commit
//      point, so a crash anywhere leaves either the old snapshot or the new
//      one, never a half-written one;
//   3. delete older snapshots and every segment below C.
// On open the highest snap-<k> is loaded and segments >= k are replayed over
// it; leftovers from a crash mid-compaction (stale .tmp files, segments
// below k) are swept. A damaged snapshot or a bad frame in a synced segment
// is Status::corruption — recovery fails loudly rather than inventing state.
//
// Errors are sticky: the first non-ok Status latches, every later mutation
// becomes a no-op, and last_status() reports it. Under a FaultyEnv crash
// point this is exactly "the process died mid-write" — the harness reopens
// the storage and asserts the recovered state is a legal prefix.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/stable_storage.h"
#include "common/thread_annotations.h"
#include "storage/env.h"
#include "storage/wal.h"

namespace zdc::storage {

struct DurableStorageOptions {
  std::uint64_t segment_bytes = 64 * 1024;
  /// Auto-compact once this many WAL bytes accumulate since the last
  /// compaction; 0 disables auto-compaction (tests call compact() directly).
  std::uint64_t compact_after_bytes = 0;
};

class DurableStableStorage final : public common::StableStorage {
 public:
  /// Opens (creating if needed) the store in `dir`: loads the newest
  /// snapshot, replays the WAL tail over it per the torn-tail rule, and
  /// sweeps half-committed compaction leftovers. `env` must outlive the
  /// returned object.
  [[nodiscard]] static Status open(Env& env, std::string dir,
                                   DurableStorageOptions options,
                                   std::unique_ptr<DurableStableStorage>* out,
                                   WalRecoveryInfo* info = nullptr);

  // common::StableStorage
  void put(const std::string& key, std::string bytes) override;
  void put_nosync(const std::string& key, std::string bytes) override;
  void sync() override;
  [[nodiscard]] std::optional<std::string> get(
      const std::string& key) const override;
  [[nodiscard]] std::uint64_t sync_count() const override;

  /// Snapshot + log truncation (see header comment). Safe to call any time;
  /// sticky-errors like every other mutation.
  [[nodiscard]] Status compact();

  /// First error any operation hit, or ok. Mutations after an error are
  /// no-ops — the simulated process is dead and the harness decides when to
  /// "reboot" by reopening the storage.
  [[nodiscard]] Status last_status() const;

  /// WAL bytes appended since open (compaction-trigger observable).
  [[nodiscard]] std::uint64_t wal_appended_bytes() const;

  /// "snap-<zero-padded index>" / its inverse (false if not a snapshot, or
  /// a .tmp leftover).
  static std::string snapshot_name(std::uint64_t index);
  static bool parse_snapshot_name(const std::string& name,
                                  std::uint64_t* index);

 private:
  DurableStableStorage(Env& env, std::string dir,
                       DurableStorageOptions options) noexcept
      : env_(env), dir_(std::move(dir)), options_(options) {}

  void append_record_locked(const std::string& key, const std::string& bytes)
      ZDC_REQUIRES(mu_);
  Status compact_locked() ZDC_REQUIRES(mu_);
  /// Latches the first non-ok status; returns it for chaining.
  Status latch_locked(Status s) ZDC_REQUIRES(mu_);

  Env& env_;
  const std::string dir_;
  const DurableStorageOptions options_;

  mutable common::Mutex mu_;
  std::unique_ptr<Wal> wal_ ZDC_GUARDED_BY(mu_);
  std::map<std::string, std::string> data_ ZDC_GUARDED_BY(mu_);
  Status status_ ZDC_GUARDED_BY(mu_);
  /// fsyncs outside the WAL (snapshot files); sync_count() adds the WAL's.
  std::uint64_t extra_syncs_ ZDC_GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_at_last_compact_ ZDC_GUARDED_BY(mu_) = 0;
};

}  // namespace zdc::storage
