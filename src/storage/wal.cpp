#include "storage/wal.h"

#include <algorithm>
#include <utility>

#include "common/codec.h"
#include "common/crc32.h"

namespace zdc::storage {

namespace {

constexpr std::uint64_t kFrameHeaderBytes = 8;  // u32 crc + u32 len
/// Upper bound a frame's length field may claim; anything larger is damage,
/// not a record (guards the scan against allocating for hostile lengths).
constexpr std::uint64_t kMaxRecordBytes = 1ull << 30;

std::uint32_t read_u32_le(std::string_view data, std::uint64_t pos) {
  common::Decoder dec(data.substr(pos, 4));
  return dec.get_u32();
}

}  // namespace

std::string Wal::segment_name(std::uint64_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "wal-" + digits + ".log";
}

bool Wal::parse_segment_name(const std::string& name, std::uint64_t* index) {
  if (name.rfind("wal-", 0) != 0) return false;
  const std::string suffix = ".log";
  if (name.size() < 4 + suffix.size() + 1) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 4; i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

std::string Wal::encode_frame(std::string_view payload) {
  common::Encoder enc(kFrameHeaderBytes + payload.size());
  enc.put_u32(0);  // crc placeholder, patched below
  enc.put_u32(static_cast<std::uint32_t>(payload.size()));
  enc.put_raw(payload);
  std::string frame = enc.take();
  // CRC covers the len field and the payload, never the crc field itself.
  const std::uint32_t crc = common::crc32c(
      std::string_view(frame).substr(4, 4 + payload.size()));
  common::Encoder patch(4);
  patch.put_u32(crc);
  frame.replace(0, 4, patch.bytes());
  return frame;
}

bool Wal::parse_frame(std::string_view data, std::uint64_t pos,
                      std::string_view* payload, std::uint64_t* next_pos) {
  if (data.size() < pos || data.size() - pos < kFrameHeaderBytes) return false;
  const std::uint32_t crc = read_u32_le(data, pos);
  const std::uint64_t len = read_u32_le(data, pos + 4);
  if (len > kMaxRecordBytes) return false;
  if (data.size() - pos - kFrameHeaderBytes < len) return false;
  const std::string_view checked = data.substr(pos + 4, 4 + len);
  if (common::crc32c(checked) != crc) return false;
  *payload = data.substr(pos + kFrameHeaderBytes, len);
  *next_pos = pos + kFrameHeaderBytes + len;
  return true;
}

namespace {

/// True if any complete valid-CRC frame starts at or after `from` — the
/// disambiguator between a torn tail (nothing valid after the damage) and
/// mid-segment corruption (valid data follows the damage).
bool valid_frame_after(std::string_view data, std::uint64_t from) {
  for (std::uint64_t pos = from;
       pos + kFrameHeaderBytes <= data.size(); ++pos) {
    std::string_view payload;
    std::uint64_t next = 0;
    if (Wal::parse_frame(data, pos, &payload, &next)) return true;
  }
  return false;
}

}  // namespace

Status Wal::open(Env& env, std::string dir, WalOptions options,
                 std::uint64_t min_segment, const ReplayFn& replay,
                 std::unique_ptr<Wal>* out, WalRecoveryInfo* info) {
  WalRecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = WalRecoveryInfo{};

  Status s = env.create_dir(dir);
  if (!s.is_ok()) return s;

  std::vector<std::string> names;
  s = env.list_dir(dir, &names);
  if (!s.is_ok()) return s;

  std::vector<std::uint64_t> segments;
  for (const std::string& name : names) {
    std::uint64_t index = 0;
    if (!parse_segment_name(name, &index)) continue;
    if (index < min_segment) {
      // Covered by the caller's snapshot; a crash between snapshot-commit
      // and cleanup can leave these behind. Finish the cleanup now.
      s = env.remove_file(join_path(dir, name));
      if (!s.is_ok()) return s;
      continue;
    }
    segments.push_back(index);
  }
  std::sort(segments.begin(), segments.end());

  auto wal = std::unique_ptr<Wal>(new Wal(env, std::move(dir), options));

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::uint64_t index = segments[i];
    const bool is_final = i + 1 == segments.size();
    const std::string path = join_path(wal->dir_, segment_name(index));
    std::string contents;
    s = env.read_file(path, &contents);
    if (!s.is_ok()) return s;
    ++info->segments_scanned;

    std::uint64_t pos = 0;
    while (pos < contents.size()) {
      std::string_view payload;
      std::uint64_t next = 0;
      if (parse_frame(contents, pos, &payload, &next)) {
        s = replay(index, payload);
        if (!s.is_ok()) return s;
        ++info->records_replayed;
        pos = next;
        continue;
      }
      // Damage at `pos`. The torn-tail rule (header comment) decides.
      if (!is_final) {
        return Status::corruption("bad frame in synced segment " + path +
                                  " at offset " + std::to_string(pos));
      }
      if (valid_frame_after(contents, pos + 1)) {
        return Status::corruption("bad frame with valid data after it in " +
                                  path + " at offset " + std::to_string(pos));
      }
      info->tail_truncated = true;
      info->torn_bytes_dropped = contents.size() - pos;
      s = env.truncate_file(path, pos);
      if (!s.is_ok()) return s;
      break;
    }
    if (is_final) {
      wal->segment_ = index;
      wal->segment_size_ = info->tail_truncated ? pos : contents.size();
    }
  }

  if (segments.empty()) {
    wal->segment_ = min_segment;
    wal->segment_size_ = 0;
    s = wal->open_writer(/*truncate=*/true);
  } else {
    s = wal->open_writer(/*truncate=*/false);
  }
  if (!s.is_ok()) return s;
  *out = std::move(wal);
  return Status::ok();
}

Status Wal::open_writer(bool truncate) {
  const std::string path = join_path(dir_, segment_name(segment_));
  return env_.new_writable(path, truncate, &file_);
}

Status Wal::append(std::string_view payload) {
  const std::string frame = encode_frame(payload);
  if (segment_size_ > 0 &&
      segment_size_ + frame.size() > options_.segment_bytes) {
    const Status s = roll();
    if (!s.is_ok()) return s;
  }
  const Status s = file_->append(frame);
  if (!s.is_ok()) return s;
  segment_size_ += frame.size();
  appended_bytes_ += frame.size();
  dirty_ = true;
  return Status::ok();
}

Status Wal::sync() {
  if (!dirty_) return Status::ok();
  const Status s = file_->sync();
  if (!s.is_ok()) return s;
  dirty_ = false;
  ++syncs_;
  return Status::ok();
}

Status Wal::roll() {
  // The outgoing segment becomes non-final; recovery refuses to repair torn
  // non-final segments, so it must be fully durable before we move on.
  Status s = sync();
  if (!s.is_ok()) return s;
  ++segment_;
  segment_size_ = 0;
  return open_writer(/*truncate=*/true);
}

Status Wal::drop_segments_below(std::uint64_t segment) {
  std::vector<std::string> names;
  Status s = env_.list_dir(dir_, &names);
  if (!s.is_ok()) return s;
  for (const std::string& name : names) {
    std::uint64_t index = 0;
    if (!parse_segment_name(name, &index)) continue;
    if (index >= segment) continue;
    s = env_.remove_file(join_path(dir_, name));
    if (!s.is_ok()) return s;
  }
  return Status::ok();
}

}  // namespace zdc::storage
