// Filesystem abstraction under the write-ahead log.
//
// Everything the durable-storage layer does to the outside world goes
// through Env, for two reasons. First, determinism: the simulator and the
// model checker run the WAL over MemEnv, a purely in-memory filesystem, so
// recovery logic is exercised byte-for-byte reproducibly from a seed.
// Second, fault injection: FaultyEnv (faulty_env.h) wraps any base Env and
// applies scripted crash points — the recovery tests prove the WAL correct
// against every way a kill -9 or power cut can slice the unsynced tail,
// which a real filesystem cannot be asked to demonstrate on cue.
//
// The durability contract every implementation obeys:
//   - append() buffers; bytes are guaranteed durable only after sync().
//   - rename_file() is atomic and immediately durable (journaled-metadata
//     assumption; this is what makes the snapshot commit protocol safe).
//   - list_dir() returns names in sorted order (deterministic recovery scan).
//
// Error handling is by Status return, never exceptions: a full disk or a
// crashed (fault-injected) env must surface as a checkable condition on the
// protocol's write path, not as control flow the protocol never wrote.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace zdc::storage {

class Status {
 public:
  enum class Code : std::uint8_t {
    kOk,
    kNotFound,
    kIoError,
    kCorruption,  ///< CRC mismatch / malformed frame that is NOT a legal torn tail
    kCrashed,     ///< fault-injected env: the process is dead, writes must fail
  };

  Status() = default;

  static Status ok() { return Status{}; }
  static Status not_found(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status io_error(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status crashed(std::string msg) {
    return Status(Code::kCrashed, std::move(msg));
  }

  [[nodiscard]] bool is_ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    switch (code_) {
      case Code::kOk: return "ok";
      case Code::kNotFound: return "not found: " + message_;
      case Code::kIoError: return "io error: " + message_;
      case Code::kCorruption: return "corruption: " + message_;
      case Code::kCrashed: return "crashed: " + message_;
    }
    return "?";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// An append-only file handle. Destroying the handle without sync() leaves
/// the unsynced tail at the mercy of a crash — that is the point.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  [[nodiscard]] virtual Status append(std::string_view bytes) = 0;
  /// Durability barrier (fsync/fdatasync on the posix env).
  [[nodiscard]] virtual Status sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates `dir` (and parents) if missing; ok if it already exists.
  [[nodiscard]] virtual Status create_dir(const std::string& dir) = 0;
  /// Sorted names (not paths) of the files directly under `dir`.
  [[nodiscard]] virtual Status list_dir(const std::string& dir,
                                        std::vector<std::string>* names) = 0;
  [[nodiscard]] virtual bool file_exists(const std::string& path) = 0;
  [[nodiscard]] virtual Status read_file(const std::string& path,
                                         std::string* contents) = 0;
  /// Opens `path` for appending, creating it if missing; with `truncate`,
  /// existing contents are discarded first.
  [[nodiscard]] virtual Status new_writable(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) = 0;
  [[nodiscard]] virtual Status truncate_file(const std::string& path,
                                             std::uint64_t size) = 0;
  /// Atomic and immediately durable (see header comment).
  [[nodiscard]] virtual Status rename_file(const std::string& from,
                                           const std::string& to) = 0;
  [[nodiscard]] virtual Status remove_file(const std::string& path) = 0;
};

/// Purely in-memory filesystem: deterministic, no syscalls, safe inside the
/// simulator and the model checker. Internally synchronized so the threaded
/// runtime's recovery tests can share one MemEnv across worker threads.
class MemEnv final : public Env {
 public:
  [[nodiscard]] Status create_dir(const std::string& dir) override;
  [[nodiscard]] Status list_dir(const std::string& dir,
                                std::vector<std::string>* names) override;
  [[nodiscard]] bool file_exists(const std::string& path) override;
  [[nodiscard]] Status read_file(const std::string& path,
                                 std::string* contents) override;
  [[nodiscard]] Status new_writable(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) override;
  [[nodiscard]] Status truncate_file(const std::string& path,
                                     std::uint64_t size) override;
  [[nodiscard]] Status rename_file(const std::string& from,
                                   const std::string& to) override;
  [[nodiscard]] Status remove_file(const std::string& path) override;

 private:
  class MemFile;

  mutable common::Mutex mu_;
  std::map<std::string, std::string> files_ ZDC_GUARDED_BY(mu_);
};

/// The real filesystem (open/write/fdatasync). Not used by the simulator —
/// only the runtime recovery tests and bench_recovery touch real disks.
class PosixEnv final : public Env {
 public:
  [[nodiscard]] Status create_dir(const std::string& dir) override;
  [[nodiscard]] Status list_dir(const std::string& dir,
                                std::vector<std::string>* names) override;
  [[nodiscard]] bool file_exists(const std::string& path) override;
  [[nodiscard]] Status read_file(const std::string& path,
                                 std::string* contents) override;
  [[nodiscard]] Status new_writable(
      const std::string& path, bool truncate,
      std::unique_ptr<WritableFile>* out) override;
  [[nodiscard]] Status truncate_file(const std::string& path,
                                     std::uint64_t size) override;
  [[nodiscard]] Status rename_file(const std::string& from,
                                   const std::string& to) override;
  [[nodiscard]] Status remove_file(const std::string& path) override;
};

/// Process-wide PosixEnv instance.
Env& posix_env();

/// "dir/name" with exactly one separator.
std::string join_path(const std::string& dir, const std::string& name);

}  // namespace zdc::storage
