#include "storage/durable_storage.h"

#include <utility>
#include <vector>

#include "common/codec.h"

// zdc-analyze: allow-file(blocking-under-lock): group commit IS fsync under mu_ — concurrent put()s queue on the mutex and ride the leader's sync; moving the fsync outside would need a promise/epoch scheme for zero benefit at this write volume (bench_recovery pins the cost)

namespace zdc::storage {

namespace {

/// WAL record payload: length-prefixed key then length-prefixed value.
std::string encode_kv(const std::string& key, const std::string& bytes) {
  common::Encoder enc(8 + key.size() + bytes.size());
  enc.put_string(key);
  enc.put_string(bytes);
  return enc.take();
}

bool decode_kv(std::string_view payload, std::string* key, std::string* bytes) {
  common::Decoder dec(payload);
  *key = dec.get_string();
  *bytes = dec.get_string();
  return dec.done();
}

/// Snapshot payload: count, then count key/value pairs.
std::string encode_snapshot(const std::map<std::string, std::string>& data) {
  common::Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(data.size()));
  for (const auto& [key, bytes] : data) {
    enc.put_string(key);
    enc.put_string(bytes);
  }
  return enc.take();
}

bool decode_snapshot(std::string_view payload,
                     std::map<std::string, std::string>* data) {
  data->clear();
  common::Decoder dec(payload);
  const std::uint32_t count = dec.get_u32();
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    std::string key = dec.get_string();
    std::string bytes = dec.get_string();
    (*data)[std::move(key)] = std::move(bytes);
  }
  return dec.done();
}

}  // namespace

std::string DurableStableStorage::snapshot_name(std::uint64_t index) {
  std::string digits = std::to_string(index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return "snap-" + digits;
}

bool DurableStableStorage::parse_snapshot_name(const std::string& name,
                                               std::uint64_t* index) {
  if (name.rfind("snap-", 0) != 0) return false;
  if (name.size() < 6) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 5; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

Status DurableStableStorage::open(Env& env, std::string dir,
                                  DurableStorageOptions options,
                                  std::unique_ptr<DurableStableStorage>* out,
                                  WalRecoveryInfo* info) {
  Status s = env.create_dir(dir);
  if (!s.is_ok()) return s;

  std::vector<std::string> names;
  s = env.list_dir(dir, &names);
  if (!s.is_ok()) return s;

  // A crash mid-compaction leaves snap-*.tmp (never committed — the rename
  // is the commit point) and possibly an older snapshot next to the new one.
  std::uint64_t snap_index = 0;
  bool have_snap = false;
  for (const std::string& name : names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      s = env.remove_file(join_path(dir, name));
      if (!s.is_ok()) return s;
      continue;
    }
    std::uint64_t index = 0;
    if (parse_snapshot_name(name, &index)) {
      if (!have_snap || index > snap_index) snap_index = index;
      have_snap = true;
    }
  }

  auto store = std::unique_ptr<DurableStableStorage>(
      new DurableStableStorage(env, std::move(dir), options));
  common::MutexLock lock(store->mu_);

  if (have_snap) {
    const std::string path =
        join_path(store->dir_, snapshot_name(snap_index));
    std::string contents;
    s = env.read_file(path, &contents);
    if (!s.is_ok()) return s;
    std::string_view payload;
    std::uint64_t next = 0;
    if (!Wal::parse_frame(contents, 0, &payload, &next) ||
        next != contents.size()) {
      return Status::corruption("snapshot " + path + " failed its checksum");
    }
    if (!decode_snapshot(payload, &store->data_)) {
      return Status::corruption("snapshot " + path + " has a malformed body");
    }
    // The newer snapshot subsumes older ones that a crash left behind.
    for (const std::string& name : names) {
      std::uint64_t index = 0;
      if (parse_snapshot_name(name, &index) && index < snap_index) {
        s = env.remove_file(join_path(store->dir_, name));
        if (!s.is_ok()) return s;
      }
    }
  }

  WalOptions wal_options;
  wal_options.segment_bytes = options.segment_bytes;
  const auto replay = [&store](std::uint64_t segment,
                               std::string_view payload) {
    std::string key;
    std::string bytes;
    if (!decode_kv(payload, &key, &bytes)) {
      return Status::corruption("malformed record in segment " +
                                std::to_string(segment));
    }
    store->data_[std::move(key)] = std::move(bytes);
    return Status::ok();
  };
  s = Wal::open(env, store->dir_, wal_options,
                have_snap ? snap_index : 0, replay, &store->wal_, info);
  if (!s.is_ok()) return s;

  *out = std::move(store);
  return Status::ok();
}

Status DurableStableStorage::latch_locked(Status s) {
  if (status_.is_ok() && !s.is_ok()) status_ = s;
  return s;
}

void DurableStableStorage::append_record_locked(const std::string& key,
                                                const std::string& bytes) {
  if (!status_.is_ok()) return;
  if (!latch_locked(wal_->append(encode_kv(key, bytes))).is_ok()) return;
  data_[key] = bytes;
  if (options_.compact_after_bytes > 0 &&
      wal_->appended_bytes() - bytes_at_last_compact_ >=
          options_.compact_after_bytes) {
    // zdc-analyze: allow(discarded-status): compaction failure latches into status_ inside compact_locked; the append already succeeded and must not be reported as failed
    compact_locked();
  }
}

void DurableStableStorage::put(const std::string& key, std::string bytes) {
  common::MutexLock lock(mu_);
  append_record_locked(key, bytes);
  // zdc-analyze: allow(discarded-status): latch_locked stores the Status in status_ (sticky); put() reports failures through the latched getter, not a return value
  if (status_.is_ok()) latch_locked(wal_->sync());
}

void DurableStableStorage::put_nosync(const std::string& key,
                                      std::string bytes) {
  common::MutexLock lock(mu_);
  append_record_locked(key, bytes);
}

void DurableStableStorage::sync() {
  common::MutexLock lock(mu_);
  if (!status_.is_ok()) return;
  // zdc-analyze: allow(discarded-status): latch_locked stores the Status in status_ (sticky); sync() surfaces failures through the latched getter
  latch_locked(wal_->sync());
}

std::optional<std::string> DurableStableStorage::get(
    const std::string& key) const {
  common::MutexLock lock(mu_);
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t DurableStableStorage::sync_count() const {
  common::MutexLock lock(mu_);
  return wal_->syncs() + extra_syncs_;
}

Status DurableStableStorage::compact() {
  common::MutexLock lock(mu_);
  if (!status_.is_ok()) return status_;
  return compact_locked();
}

Status DurableStableStorage::compact_locked() {
  // Step 1: fresh segment. Everything below it is covered by the snapshot
  // we are about to commit; the roll also syncs the outgoing segment.
  Status s = latch_locked(wal_->roll());
  if (!s.is_ok()) return s;
  const std::uint64_t index = wal_->current_segment();

  // Step 2: write, sync, and atomically commit the snapshot.
  const std::string tmp_path =
      join_path(dir_, snapshot_name(index) + ".tmp");
  const std::string final_path = join_path(dir_, snapshot_name(index));
  std::unique_ptr<WritableFile> file;
  s = latch_locked(env_.new_writable(tmp_path, /*truncate=*/true, &file));
  if (!s.is_ok()) return s;
  s = latch_locked(file->append(Wal::encode_frame(encode_snapshot(data_))));
  if (!s.is_ok()) return s;
  s = latch_locked(file->sync());
  if (!s.is_ok()) return s;
  ++extra_syncs_;
  s = latch_locked(env_.rename_file(tmp_path, final_path));
  if (!s.is_ok()) return s;

  // Step 3: sweep what the snapshot subsumes. A crash in here is harmless —
  // open() finishes the sweep.
  std::vector<std::string> names;
  s = latch_locked(env_.list_dir(dir_, &names));
  if (!s.is_ok()) return s;
  for (const std::string& name : names) {
    std::uint64_t old_index = 0;
    if (parse_snapshot_name(name, &old_index) && old_index < index) {
      s = latch_locked(env_.remove_file(join_path(dir_, name)));
      if (!s.is_ok()) return s;
    }
  }
  s = latch_locked(wal_->drop_segments_below(index));
  if (!s.is_ok()) return s;

  bytes_at_last_compact_ = wal_->appended_bytes();
  return Status::ok();
}

Status DurableStableStorage::last_status() const {
  common::MutexLock lock(mu_);
  return status_;
}

std::uint64_t DurableStableStorage::wal_appended_bytes() const {
  common::MutexLock lock(mu_);
  return wal_->appended_bytes();
}

}  // namespace zdc::storage
