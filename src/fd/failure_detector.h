// Failure-detector abstractions (paper Sec. 3.2).
//
// The protocols only ever *query* a detector (Omega's leader, EventuallyPerfect's
// suspect list) and need to be *re-driven* when the detector's output changes —
// the pseudo-code's `wait until ... ∨ ld != Ω.leader` statements. We therefore
// split the API into read-only views handed to protocols and a listener hook the
// host uses to re-evaluate blocked wait conditions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace zdc::fd {

/// Read-only view of an Omega (eventual leader) failure detector module.
/// Eventual Leader property: eventually leader() returns the same correct
/// process forever at every correct process.
class OmegaView {
 public:
  virtual ~OmegaView() = default;
  /// Current leader estimate; kNoProcess if the module has no estimate yet.
  [[nodiscard]] virtual ProcessId leader() const = 0;
};

/// Read-only view of an eventually-perfect (◇P) failure detector module.
/// Strong Completeness: eventually every crashed process is suspected.
/// Eventual Strong Accuracy: eventually no correct process is suspected.
class SuspectView {
 public:
  virtual ~SuspectView() = default;
  [[nodiscard]] virtual bool suspects(ProcessId p) const = 0;
};

/// Classic reduction Ω := lowest non-suspected process id. Once the underlying
/// ◇P output stabilizes to exactly the crashed set, leader() converges to the
/// same correct process everywhere.
class OmegaFromSuspects final : public OmegaView {
 public:
  OmegaFromSuspects(const SuspectView& suspects, std::uint32_t n)
      : suspects_(suspects), n_(n) {}

  [[nodiscard]] ProcessId leader() const override {
    for (ProcessId p = 0; p < n_; ++p) {
      if (!suspects_.suspects(p)) return p;
    }
    return kNoProcess;
  }

 private:
  const SuspectView& suspects_;
  std::uint32_t n_;
};

}  // namespace zdc::fd
