// Stable storage for the crash-recovery model (paper Sec. 2, citing
// Aguilera et al.: "Paxos-like protocols allow for the recovery of crashed
// processes"). A recovering process keeps its promises only if it wrote them
// down before acting on them — this interface is the write-ahead contract,
// and the sync counter is what the recovery tests and benches use to price
// it.
//
// The in-memory implementation survives *simulated* process restarts (the
// object outlives the protocol instance); a disk-backed implementation would
// fsync in sync() — the counting is what matters for evaluation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace zdc::common {

class StableStorage {
 public:
  virtual ~StableStorage() = default;

  /// Durably records key := bytes. Counts one synchronous write.
  virtual void put(const std::string& key, std::string bytes) = 0;
  virtual std::optional<std::string> get(const std::string& key) const = 0;

  /// Number of synchronous writes performed (the cost of recovery safety).
  [[nodiscard]] virtual std::uint64_t sync_count() const = 0;
};

/// Storage that survives simulated crashes (the harness owns it; protocol
/// instances come and go). Internally synchronized: on the threaded runtime
/// the protocol writes from its delivery thread while harnesses poll
/// sync_count() from the test thread.
class InMemoryStableStorage final : public StableStorage {
 public:
  void put(const std::string& key, std::string bytes) override {
    MutexLock lock(mu_);
    data_[key] = std::move(bytes);
    ++syncs_;
  }
  std::optional<std::string> get(const std::string& key) const override {
    MutexLock lock(mu_);
    const auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::uint64_t sync_count() const override {
    MutexLock lock(mu_);
    return syncs_;
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, std::string> data_ ZDC_GUARDED_BY(mu_);
  std::uint64_t syncs_ ZDC_GUARDED_BY(mu_) = 0;
};

}  // namespace zdc::common
