// Stable storage for the crash-recovery model (paper Sec. 2, citing
// Aguilera et al.: "Paxos-like protocols allow for the recovery of crashed
// processes"). A recovering process keeps its promises only if it wrote them
// down before acting on them — this interface is the write-ahead contract,
// and the sync counter is what the recovery tests and benches use to price
// it.
//
// The in-memory implementation survives *simulated* process restarts (the
// object outlives the protocol instance); a disk-backed implementation would
// fsync in sync() — the counting is what matters for evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace zdc::common {

class StableStorage {
 public:
  virtual ~StableStorage() = default;

  /// Durably records key := bytes. Counts one synchronous write.
  virtual void put(const std::string& key, std::string bytes) = 0;
  virtual std::optional<std::string> get(const std::string& key) const = 0;

  /// Stages key := bytes without the durability barrier: the write is
  /// visible to get() (own-writes / page-cache semantics) but a crash before
  /// the next sync() may lose it. The group-commit primitive — N stages plus
  /// one sync() cost one synchronous write instead of N. The default
  /// forwards to put(), so implementations that predate the split keep their
  /// every-write-durable semantics.
  virtual void put_nosync(const std::string& key, std::string bytes) {
    put(key, std::move(bytes));
  }

  /// Durability barrier for staged writes. Counts one synchronous write iff
  /// anything was staged. Default no-op matches the put_nosync() default
  /// (every put already synced).
  virtual void sync() {}

  /// Number of synchronous writes performed (the cost of recovery safety).
  [[nodiscard]] virtual std::uint64_t sync_count() const = 0;
};

/// Storage that survives simulated crashes (the harness owns it; protocol
/// instances come and go). Internally synchronized: on the threaded runtime
/// the protocol writes from its delivery thread while harnesses poll
/// sync_count() from the test thread.
class InMemoryStableStorage final : public StableStorage {
 public:
  void put(const std::string& key, std::string bytes) override {
    MutexLock lock(mu_);
    data_[key] = std::move(bytes);
    ++syncs_;
  }
  std::optional<std::string> get(const std::string& key) const override {
    MutexLock lock(mu_);
    // Own writes are visible before the barrier (page-cache semantics).
    const auto staged = pending_.find(key);
    if (staged != pending_.end()) return staged->second;
    const auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void put_nosync(const std::string& key, std::string bytes) override {
    MutexLock lock(mu_);
    pending_[key] = std::move(bytes);
  }
  void sync() override {
    MutexLock lock(mu_);
    if (pending_.empty()) return;
    for (auto& [key, bytes] : pending_) data_[key] = std::move(bytes);
    pending_.clear();
    ++syncs_;
  }
  [[nodiscard]] std::uint64_t sync_count() const override {
    MutexLock lock(mu_);
    return syncs_;
  }

  /// Crash model hook for harnesses: staged-but-unsynced writes do NOT
  /// survive a crash. Called at the point a simulated process dies.
  void drop_unsynced() {
    MutexLock lock(mu_);
    pending_.clear();
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, std::string> data_ ZDC_GUARDED_BY(mu_);
  /// Writes staged by put_nosync(), not yet covered by a sync().
  std::map<std::string, std::string> pending_ ZDC_GUARDED_BY(mu_);
  std::uint64_t syncs_ ZDC_GUARDED_BY(mu_) = 0;
};

/// Builds the stable storage for one process. Harnesses call it once per
/// process and keep the result across simulated crash/restart cycles —
/// storage is the part of a process that survives; the protocol instance is
/// the part that does not. RunOptions::storage_factory carries one of these
/// into every harness (obs/run_options.h).
using StorageFactory =
    std::function<std::unique_ptr<StableStorage>(ProcessId)>;

}  // namespace zdc::common
