// Bounds-checked binary encoding of protocol messages.
//
// All wire messages in zdc are encoded with Encoder and parsed with Decoder.
// Decoder never reads out of bounds: every getter checks the remaining length
// and, on underflow, latches an error flag and returns a zero value. Callers
// check ok() once after reading a whole message; a failed decode is reported to
// the caller, never undefined behaviour. Integers are little-endian fixed
// width (the simulator and runtime are same-host, but we still commit to a
// byte order so the format is well defined).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace zdc::common {

/// Serializes integers and strings into a byte buffer.
///
/// Allocation-lean by design: fixed-width integers are appended as one
/// word-wise chunk (not byte-by-byte push_back), callers on hot paths size
/// the buffer up front with reserve(), and clear() keeps the capacity so one
/// Encoder can be reused across many frames without churning the allocator.
class Encoder {
 public:
  Encoder() = default;
  /// Pre-sizes the buffer for a known frame size.
  explicit Encoder(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Grows capacity to at least `n` bytes (never shrinks).
  void reserve(std::size_t n) { buf_.reserve(n); }
  /// Drops the contents but keeps the capacity — small-buffer reuse for
  /// encode loops that emit one frame per iteration.
  void clear() { buf_.clear(); }

  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void put_u16(std::uint16_t v) { put_fixed(v); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }

  void put_f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  /// Length-prefixed byte string (u32 length).
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Raw bytes without a length prefix (for nested pre-encoded payloads whose
  /// length is implied by the enclosing frame).
  void put_raw(std::string_view s) { buf_.append(s.data(), s.size()); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_fixed(T v) {
    // Compose the little-endian image in a stack word and append it in one
    // call; the shift loop compiles to a single store on LE targets and the
    // append to one memcpy — versus sizeof(T) bounds-checked push_backs.
    char word[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      word[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(word, sizeof(T));
  }

  std::string buf_;
};

/// Parses a byte buffer produced by Encoder. All reads are bounds checked.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : data_(bytes) {}

  std::uint8_t get_u8() {
    if (!check(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t get_u16() { return get_fixed<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_fixed<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_fixed<std::uint64_t>(); }

  double get_f64() {
    std::uint64_t bits = get_u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool get_bool() { return get_u8() != 0; }

  std::string get_string() {
    std::uint32_t len = get_u32();
    // The length prefix is validated against remaining() *before* any
    // allocation: a crafted frame claiming a multi-GB string poisons the
    // decoder instead of driving a huge reserve.
    if (!check(len)) return {};
    std::string out(data_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  /// All bytes not yet consumed (consumes them).
  std::string get_rest() {
    std::string out(data_.substr(pos_));
    pos_ = data_.size();
    return out;
  }

  /// Latches the error flag: callers use this when a structurally impossible
  /// value (e.g. a hostile count prefix) is detected before any allocation.
  void poison() { ok_ = false; }

  /// True iff no read so far has run past the end of the buffer.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True iff ok() and the whole buffer was consumed — use to reject messages
  /// with trailing garbage.
  [[nodiscard]] bool done() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool check(std::size_t need) {
    if (!ok_ || data_.size() - pos_ < need) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T get_fixed() {
    if (!check(sizeof(T))) return 0;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Consensus wire-frame version. Version 2 introduced the sealed frame
/// below; version-1 frames (bare body, no header) are rejected by
/// open_frame — the bump is deliberate, there is no mixed-version decode
/// (every deployment ships both ends of the wire).
inline constexpr std::uint8_t kFrameVersion = 2;

/// Bytes prepended by seal_frame: [version u8][crc32c u32 of body].
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Wraps a protocol message body in the integrity header. With the header in
/// place a flipped byte anywhere in the frame — header or body — is a
/// *detectable drop*: open_frame fails, the receiver discards the frame, and
/// the transport's reliability layer (ARQ / parked retransmission) delivers
/// the clean original. Without it a flip is silent garbage handed to the
/// protocol decoder.
[[nodiscard]] std::string seal_frame(std::string body);

/// Verifies and strips the header written by seal_frame. On success stores
/// the body view (aliasing `frame`) in `*body` and returns true; on any
/// mismatch — short frame, wrong version, checksum failure — returns false
/// and leaves `*body` untouched.
[[nodiscard]] bool open_frame(std::string_view frame, std::string_view* body);

/// Encodes a list of strings with a count prefix.
void encode_string_list(Encoder& enc, const std::vector<std::string>& items);

/// Decodes a list written by encode_string_list. Returns an empty list and
/// poisons `dec` on malformed input.
std::vector<std::string> decode_string_list(Decoder& dec);

}  // namespace zdc::common
