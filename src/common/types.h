// Core identifier and value types shared by every zdc module.
//
// The paper's system model (Sec. 3): a set Pi = {p1..pn} of n processes, up to
// f < n of which may crash. Processes are identified here by dense 0-based
// indices so that containers indexed by ProcessId are natural.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace zdc {

/// Dense 0-based process index within a group of size n.
using ProcessId = std::uint32_t;

/// Sentinel meaning "no process" (the paper's bottom, e.g. ld = ⊥ before the
/// first query of Omega).
inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();

/// Asynchronous round number. Rounds are per consensus instance and start at 1.
using Round = std::uint64_t;

/// Identifier of a consensus instance (C-Abcast runs one instance per batch
/// round k; standalone consensus uses instance 0).
using InstanceId = std::uint64_t;

/// Consensus values are opaque byte strings. One-step decision hinges on value
/// *equality*, which byte strings give us directly; higher layers (C-Abcast,
/// the replicated state machine) serialize their batches into a Value.
using Value = std::string;

/// Milliseconds of simulated or real time, as a double so the discrete-event
/// simulator can model sub-millisecond network behaviour.
using TimePoint = double;
using Duration = double;

/// Group-membership arithmetic used throughout the protocols.
struct GroupParams {
  std::uint32_t n = 0;  ///< total number of processes
  std::uint32_t f = 0;  ///< maximum number of crash failures tolerated

  /// Quorum of n-f processes (the wait threshold in every round).
  [[nodiscard]] std::uint32_t quorum() const { return n - f; }
  /// The n-2f "echo" threshold used by the one-step agreement arguments.
  [[nodiscard]] std::uint32_t echo_threshold() const { return n - 2 * f; }
  /// Strict majority.
  [[nodiscard]] std::uint32_t majority() const { return n / 2 + 1; }

  /// One-step protocols (L-/P-/Brasileiro/WABCast) require f < n/3.
  [[nodiscard]] bool one_step_resilient() const { return n > 3 * f; }
  /// Paxos requires only f < n/2.
  [[nodiscard]] bool majority_resilient() const { return n > 2 * f; }
};

}  // namespace zdc
