// Move-only type-erased `void()` callable with small-buffer storage.
//
// The simulator schedules millions of events per run; storing each handler in
// a std::function heap-allocates whenever the capture exceeds the library's
// tiny SBO (a single shared_ptr capture already spills on libstdc++). An
// InlineAction keeps captures up to kInlineBytes in the object itself and
// only boxes larger callables, so the event-queue hot path allocates nothing
// per event. Unlike std::function it is move-only, which also admits
// move-only captures (unique_ptr and friends).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace zdc::common {

class InlineAction {
 public:
  /// Large enough for every simulator event handler: a `this` pointer, a few
  /// ids and a shared_ptr payload fit with room to spare.
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like std::function
  InlineAction(F&& f) {
    emplace(std::forward<F>(f));
  }

  InlineAction(InlineAction&& o) noexcept { move_from(o); }
  InlineAction& operator=(InlineAction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  void operator()() { vt_->invoke(&storage_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(&storage_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline_v =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      static constexpr VTable vt = {
          [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
          [](void* dst, void* src) {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); }};
      vt_ = &vt;
    } else {
      // Heap fallback: the storage holds a single owning pointer.
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
      static constexpr VTable vt = {
          [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
          [](void* dst, void* src) {
            D** from = std::launder(reinterpret_cast<D**>(src));
            ::new (dst) D*(*from);
          },
          [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); }};
      vt_ = &vt;
    }
  }

  void move_from(InlineAction& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(&storage_, &o.storage_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace zdc::common
