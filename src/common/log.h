// Minimal leveled logger.
//
// Protocol implementations log at Debug/Trace; harnesses at Info. The global
// level defaults to Warn so tests and benches stay quiet unless a failing seed
// is being replayed (set_level(Level::kTrace) or ZDC_LOG_LEVEL=trace).
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace zdc::common {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Sets the process-wide log threshold.
void set_log_level(LogLevel level);
/// Reads the threshold (initialized from the ZDC_LOG_LEVEL environment
/// variable on first use: trace|debug|info|warn|error|off).
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const char* component, const std::string& message);
}

/// Streams one log line tagged with a component name, e.g.
///   ZDC_LOG(kDebug, "l-consensus") << "p" << id << " round " << r;
#define ZDC_LOG(level, component)                                           \
  for (bool zdc_log_once =                                                  \
           (::zdc::common::LogLevel::level >= ::zdc::common::log_level());  \
       zdc_log_once; zdc_log_once = false)                                  \
  ::zdc::common::detail::LogStream(::zdc::common::LogLevel::level, component)

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace zdc::common
