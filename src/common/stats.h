// Online statistics and latency histograms for the evaluation harnesses.
//
// Threading: deliberately lock-free and unannotated — instances are owned by
// exactly one harness or bench thread. Cross-thread aggregation (e.g.
// runtime/workload.cpp) keeps per-thread instances behind the owner's
// ZDC_GUARDED_BY mutex and merges after join; never share one instance
// between concurrent writers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zdc::common {

/// Welford online mean/variance plus min/max. O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  /// Parallel Welford combine (Chan et al.): after `a.merge(b)`, `a` holds
  /// exactly the statistics of the concatenated sample streams. Lets
  /// per-thread instances be folded after join without re-adding raw samples.
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Used for per-experiment
/// latency distributions where sample counts are modest (<= millions).
class Sampler {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank (the smallest sample s such that at
  /// least p% of samples are <= s). Pinned edge semantics:
  ///   * empty sampler        -> 0.0 (matches mean()/min()/max());
  ///   * out-of-range p       -> clamped into [0, 100] (never asserts: sweep
  ///                             code computes p arithmetically);
  ///   * p <= 0               -> the minimum;
  ///   * p >= 100             -> the maximum;
  ///   * single sample        -> that sample, for every p.
  [[nodiscard]] double percentile(double p) const;

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed set of named monotonic counters used by protocols to account for
/// messages/bytes/rounds. Kept as a plain struct: the set is small and closed.
struct ProtocolMetrics {
  std::uint64_t messages_sent = 0;      ///< unicast count (a broadcast to n counts n)
  std::uint64_t bytes_sent = 0;         ///< payload bytes, excluding transport framing
  std::uint64_t rounds_started = 0;     ///< asynchronous rounds entered
  std::uint64_t decisions = 0;          ///< decide events (first decision only)
  std::uint64_t wasted_rounds = 0;      ///< rounds that ended without progress

  ProtocolMetrics& operator+=(const ProtocolMetrics& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    rounds_started += o.rounds_started;
    decisions += o.decisions;
    wasted_rounds += o.wasted_rounds;
    return *this;
  }
};

/// Formats a row of fixed-width columns for the bench tables.
std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths);

}  // namespace zdc::common
