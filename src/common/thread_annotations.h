// Portable Clang Thread Safety Analysis annotations.
//
// Wrappers over Clang's `capability` attributes (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) that expand to
// nothing on compilers without the attribute, so annotated code builds
// everywhere while `clang++ -Wthread-safety` (the ZDC_THREAD_SAFETY CMake
// option) statically checks the locking discipline.
//
// The standard library's mutexes carry no annotations on libstdc++, so the
// analysis cannot see a bare std::lock_guard acquire anything. Use the
// annotated zdc::common::Mutex / MutexLock pair from common/mutex.h instead;
// these macros then document which capability guards which data:
//
//   class Table {
//     common::Mutex mu_;
//     std::vector<Row> rows_ ZDC_GUARDED_BY(mu_);
//     void compact() ZDC_REQUIRES(mu_);   // caller must hold mu_
//     Row get(int i) const ZDC_EXCLUDES(mu_);  // caller must NOT hold mu_
//   };
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ZDC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ZDC_THREAD_ANNOTATION
#define ZDC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (our Mutex wrapper).
#define ZDC_CAPABILITY(name) ZDC_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define ZDC_SCOPED_CAPABILITY ZDC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define ZDC_GUARDED_BY(x) ZDC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define ZDC_PT_GUARDED_BY(x) ZDC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the given mutex(es).
#define ZDC_REQUIRES(...) \
  ZDC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the given mutex(es)
/// (deadlock documentation: it acquires them itself).
#define ZDC_EXCLUDES(...) ZDC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the given mutex(es) and returns holding them.
#define ZDC_ACQUIRE(...) \
  ZDC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es).
#define ZDC_RELEASE(...) \
  ZDC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the mutex iff it returns `result`.
#define ZDC_TRY_ACQUIRE(result, ...) \
  ZDC_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Asserts (at runtime, to the analysis) that the capability is already held.
#define ZDC_ASSERT_CAPABILITY(x) \
  ZDC_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to a capability (lock accessors).
#define ZDC_RETURN_CAPABILITY(x) ZDC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// comment explaining why the locking is correct but inexpressible.
#define ZDC_NO_THREAD_SAFETY_ANALYSIS \
  ZDC_THREAD_ANNOTATION(no_thread_safety_analysis)
