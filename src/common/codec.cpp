#include "common/codec.h"

#include "common/crc32.h"

namespace zdc::common {

std::string seal_frame(std::string body) {
  const std::uint32_t crc = crc32c(body);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  frame.push_back(static_cast<char>(kFrameVersion));
  for (std::size_t i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  frame.append(body);
  return frame;
}

bool open_frame(std::string_view frame, std::string_view* body) {
  if (frame.size() < kFrameHeaderBytes) return false;
  if (static_cast<std::uint8_t>(frame[0]) != kFrameVersion) return false;
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(frame[1 + i]))
           << (8 * i);
  }
  const std::string_view rest = frame.substr(kFrameHeaderBytes);
  if (crc32c(rest) != crc) return false;
  *body = rest;
  return true;
}

void encode_string_list(Encoder& enc, const std::vector<std::string>& items) {
  std::size_t bytes = 4;
  for (const auto& s : items) bytes += 4 + s.size();
  enc.reserve(enc.size() + bytes);
  enc.put_u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& s : items) {
    enc.put_string(s);
  }
}

std::vector<std::string> decode_string_list(Decoder& dec) {
  const std::uint32_t count = dec.get_u32();
  if (!dec.ok()) return {};
  // Validate the count against remaining() *before* any reserve: every
  // element costs at least its own 4-byte length prefix, so a count claiming
  // more elements than remaining()/4 is structurally impossible — a crafted
  // u32 prefix must poison the decoder, not drive a multi-GB allocation.
  if (static_cast<std::uint64_t>(count) * 4 > dec.remaining()) {
    dec.poison();
    return {};
  }
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    out.push_back(dec.get_string());
  }
  if (!dec.ok()) out.clear();
  return out;
}

}  // namespace zdc::common
