#include "common/codec.h"

namespace zdc::common {

void encode_string_list(Encoder& enc, const std::vector<std::string>& items) {
  enc.put_u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& s : items) {
    enc.put_string(s);
  }
}

std::vector<std::string> decode_string_list(Decoder& dec) {
  std::uint32_t count = dec.get_u32();
  std::vector<std::string> out;
  // Guard against hostile counts: never reserve more entries than bytes left.
  if (count > dec.remaining() + 1) {
    count = static_cast<std::uint32_t>(dec.remaining() + 1);
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    out.push_back(dec.get_string());
  }
  if (!dec.ok()) out.clear();
  return out;
}

}  // namespace zdc::common
