// CRC32C (Castagnoli) checksums for on-disk record framing.
//
// The write-ahead log (src/storage/wal.h) frames every record with a CRC so
// that a torn write or a flipped bit is *detected* instead of silently
// replayed into protocol state. CRC32C is the standard polynomial for
// storage framing (iSCSI, ext4, LevelDB); the table-driven software
// implementation here is deterministic and allocation-free, which keeps it
// usable from the deterministic simulator as well as the real-disk path.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace zdc::common {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC32C of `bytes`, continuing from `seed` (pass a previous result to
/// checksum data presented in chunks; 0 starts a fresh checksum).
inline std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  const auto& table = detail::crc32c_table();
  std::uint32_t crc = seed ^ 0xffffffffu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace zdc::common
