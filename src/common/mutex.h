// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex/std::lock_guard carry no thread-safety attributes,
// so `-Wthread-safety` cannot see them acquire anything. Mutex and MutexLock
// are zero-cost annotated shims over std::mutex/std::unique_lock that the
// analysis understands; all shared mutable state in the threaded runtime is
// guarded through them (ZDC_GUARDED_BY in the owning class).
//
// Condition variables keep using std::condition_variable: wait through the
// guard's inner() unique_lock —
//
//   common::MutexLock lock(box.mu);
//   while (queue.empty()) cv.wait(lock.inner());
//
// The analysis treats the capability as held across the wait, which matches
// the invariant that matters: wait() reacquires before returning, so guarded
// data is never touched unlocked.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace zdc::common {

/// std::mutex with capability annotations. Same size, same cost.
class ZDC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ZDC_ACQUIRE() { mu_.lock(); }
  void unlock() ZDC_RELEASE() { mu_.unlock(); }
  bool try_lock() ZDC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable wiring only. Do not
  /// lock it directly — that would be invisible to the analysis.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex (std::lock_guard/unique_lock replacement that the
/// analysis can follow). Holds for its whole scope; inner() exposes the
/// underlying unique_lock for condition-variable waits.
class ZDC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ZDC_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() ZDC_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait/wait_for/wait_until only.
  [[nodiscard]] std::unique_lock<std::mutex>& inner() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace zdc::common
