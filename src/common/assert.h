// Always-on invariant checking.
//
// Protocol invariants (agreement, quorum intersection, round monotonicity) are
// cheap to check relative to message handling, so we keep them enabled in
// every build type instead of relying on NDEBUG-stripped assert().
//
// Failures print the expression, file:line, and — when a deterministic
// harness registered one — the execution context (which simulated node was
// running, at what simulated time), so a failing randomized schedule is
// attributable without re-running under a debugger:
//
//   zdc assertion failed: est.has_value()
//     at src/consensus/l_consensus.cpp:142
//     while executing node p2 at sim t=13.250ms
//
// Harnesses publish the context with the RAII scope (thread-local, so the
// threaded runtime's workers never see another thread's sim):
//
//   detail::AssertContextScope scope(node_id, events_.now());
//   nodes_[to].protocol->on_message(from, bytes);
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace zdc::detail {

/// Where execution currently is, for assertion messages. node < 0 or
/// time_ms < 0 mean "unknown" and are omitted from the output.
struct AssertContext {
  std::int64_t node = -1;
  double time_ms = -1.0;
};

inline AssertContext& assert_context() {
  thread_local AssertContext ctx;
  return ctx;
}

/// Publishes (node, sim time) for the current thread; restores the previous
/// context on destruction so nested harnesses compose.
class AssertContextScope {
 public:
  AssertContextScope(std::int64_t node, double time_ms)
      : saved_(assert_context()) {
    assert_context() = AssertContext{node, time_ms};
  }
  ~AssertContextScope() { assert_context() = saved_; }

  AssertContextScope(const AssertContextScope&) = delete;
  AssertContextScope& operator=(const AssertContextScope&) = delete;

 private:
  AssertContext saved_;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "zdc assertion failed: %s\n  at %s:%d\n", expr, file,
               line);
  const AssertContext& ctx = assert_context();
  if (ctx.node >= 0 || ctx.time_ms >= 0.0) {
    std::fprintf(stderr, "  while executing");
    if (ctx.node >= 0) {
      std::fprintf(stderr, " node p%lld", static_cast<long long>(ctx.node));
    }
    if (ctx.time_ms >= 0.0) {
      std::fprintf(stderr, " at sim t=%.3fms", ctx.time_ms);
    }
    std::fprintf(stderr, "\n");
  }
  if (msg != nullptr) std::fprintf(stderr, "  %s\n", msg);
  std::abort();
}

}  // namespace zdc::detail

#define ZDC_ASSERT(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::zdc::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                   \
  } while (false)

#define ZDC_ASSERT_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::zdc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)
