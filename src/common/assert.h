// Always-on invariant checking.
//
// Protocol invariants (agreement, quorum intersection, round monotonicity) are
// cheap to check relative to message handling, so we keep them enabled in
// every build type instead of relying on NDEBUG-stripped assert().
#pragma once

#include <cstdio>
#include <cstdlib>

namespace zdc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "zdc assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace zdc::detail

#define ZDC_ASSERT(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::zdc::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);   \
    }                                                                   \
  } while (false)

#define ZDC_ASSERT_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::zdc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                   \
  } while (false)
