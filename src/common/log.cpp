#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/mutex.h"

namespace zdc::common {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("ZDC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

namespace detail {

// One mutex keeps concurrent runtime threads from interleaving lines. File
// scope (not function-local static) so the thread-safety analysis can name it.
namespace {
Mutex g_sink_mu;
}  // namespace

void log_line(LogLevel level, const char* component, const std::string& message) {
  if (level < log_level()) return;
  MutexLock lock(g_sink_mu);
  std::fprintf(stderr, "[%s] %-14s %s\n", level_name(level), component,
               message.c_str());
}

}  // namespace detail
}  // namespace zdc::common
