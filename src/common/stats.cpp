#include "common/stats.h"

#include <cmath>

namespace zdc::common {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Sampler::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Sampler::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Sampler::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Sampler::min() const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  return samples_.front();
}

double Sampler::max() const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  return samples_.back();
}

double Sampler::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  // Clamp (documented in the header): out-of-range p maps to the extremes.
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  // Nearest-rank: rank = ceil(p/100 * n) in [1, n], 1-indexed.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[std::min(samples_.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::string cell = cells[i];
    if (cell.size() < static_cast<std::size_t>(width)) {
      cell.append(static_cast<std::size_t>(width) - cell.size(), ' ');
    }
    out += cell;
    if (i + 1 != cells.size()) out += "  ";
  }
  return out;
}

}  // namespace zdc::common
