// Deterministic random number generation for the simulator and workloads.
//
// Every random decision in a simulation run flows from one seeded Rng so that
// a (seed, config) pair reproduces a run bit-for-bit — the property the
// randomized protocol safety tests rely on to report failing seeds.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstring>
#include <string_view>

#include "common/assert.h"

namespace zdc::common {

/// One round of SplitMix64 (Steele, Lea & Flood) — the standard seed
/// scrambler: a bijective mix whose outputs for distinct inputs are
/// decorrelated, used for Rng seeding and for deriving sweep seeds.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives an independent per-run seed from (base, label, throughput, rep).
/// Benches use this for repeat/sweep seeds: the former additive scheme
/// (`seed_base + rep * K`) reused identical streams across protocols and
/// sweep points and could collide across bases, silently correlating
/// "independent" repeats. Chaining every field through splitmix64 gives a
/// distinct stream per cell (see the collision regression in stats_test).
inline std::uint64_t mix_seed(std::uint64_t seed_base, std::string_view label,
                              double throughput, std::uint64_t rep) {
  std::uint64_t h = splitmix64(seed_base);
  for (const char c : label) {
    h = splitmix64(h ^ static_cast<unsigned char>(c));
  }
  std::uint64_t tp_bits = 0;
  static_assert(sizeof(tp_bits) == sizeof(throughput));
  std::memcpy(&tp_bits, &throughput, sizeof(tp_bits));
  h = splitmix64(h ^ tp_bits);
  return splitmix64(h ^ rep);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors: the
    // generator state advances by the golden-ratio gamma, each output is the
    // scrambled state. (Byte-for-byte the historical stream — seeds pin
    // golden traces.)
    std::uint64_t x = seed;
    for (auto& word : s_) {
      word = splitmix64(x);
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    ZDC_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// True with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed with the given mean (inter-arrival times,
  /// network jitter).
  double exponential(double mean) {
    double u = next_double();
    // Avoid log(0).
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Derives an independent stream (per process, per channel, ...) so that
  /// adding randomness consumers does not perturb unrelated streams.
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace zdc::common
