// The one bit-flip primitive every corruption fault routes through.
//
// Storage faults (`FaultyEnv` `@read ... flip`), the network byte-flip fault
// (`FaultPlan` `flip`/`scorrupt`, LinkPolicy corruption budgets) and the
// model checker's corruption choice points all corrupt bytes the same way:
// XOR one bit at one offset. Keeping the primitive in one place means the
// semantics — out-of-range offsets corrupt nothing, bit indices wrap into
// 0..7 — are tested once (corrupt_test.cpp) and cannot drift between the
// storage and network fault paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace zdc::fault {

/// Sentinel byte offset meaning "the middle byte of the buffer" — used by
/// fault plans that want a payload flip without knowing frame sizes. The
/// middle lands inside the body of any realistic frame (never only in a
/// header), which is what a "corrupt the message" plan means.
inline constexpr std::uint64_t kMiddleByte = ~std::uint64_t{0};

/// Resolves a requested flip offset against a buffer of `size` bytes:
/// kMiddleByte picks size/2. Returns the concrete offset (which may still be
/// out of range for size 0 — bit_flip treats that as a no-op).
[[nodiscard]] inline std::uint64_t resolve_flip_byte(std::uint64_t byte,
                                                     std::size_t size) {
  return byte == kMiddleByte ? size / 2 : byte;
}

/// Flips bit `bit` (masked into 0..7) of `bytes[byte]` in place. An offset at
/// or past the end is a no-op: corrupting past a short frame corrupts
/// nothing, it does not widen the frame.
inline void bit_flip(std::string& bytes, std::uint64_t byte,
                     std::uint32_t bit) {
  if (byte >= bytes.size()) return;
  bytes[byte] = static_cast<char>(static_cast<std::uint8_t>(bytes[byte]) ^
                                  (1u << (bit & 7u)));
}

/// Copying form for fabrics that must keep the clean original around (the
/// reliable channel re-delivers it after the corrupted copy is dropped).
[[nodiscard]] inline std::string bit_flip_copy(std::string bytes,
                                               std::uint64_t byte,
                                               std::uint32_t bit) {
  bit_flip(bytes, resolve_flip_byte(byte, bytes.size()), bit);
  return bytes;
}

}  // namespace zdc::fault
