// Scripted fault schedules ("nemesis plans").
//
// A FaultPlan is a time-ordered list of fault actions applied to a running
// deployment — the declarative layer above LinkPolicy. The same plan drives
// the deterministic simulator (scheduled on the event queue, so identical
// seed + identical plan reproduces a run byte-for-byte) and the threaded
// runtime (replayed in wall-clock time by NemesisDriver in
// runtime/consensus_runner.h or by hand).
//
// Text syntax — one action per line, '#' starts a comment:
//
//   @<time_ms> partition <id>... | <id>...    # cut the group in two
//   @<time_ms> heal                           # clear every link override
//   @<time_ms> isolate <p>                    # cut all links to/from p
//   @<time_ms> link <from> <to> [drop=<prob>] [delay=<ms>]
//   @<time_ms> pause <p>                      # stop-the-world, state kept
//   @<time_ms> resume <p>
//   @<time_ms> crash <p>                      # process failure, state lost
//   @<time_ms> restart <p>                    # new incarnation (StableStorage
//                                             #   is what survives, if any)
//   @<time_ms> flip <from> <to> [count=<k>] [byte=<o>] [bit=<b>]
//                                             # corrupt the next k frames on
//                                             #   the link (default middle
//                                             #   byte, bit 0, k=1)
//   @<time_ms> equivocate <p> [count=<k>]     # p's next k broadcasts also
//                                             #   deliver a divergent copy
//   @<time_ms> scorrupt <p> [count=<k>] [byte=<o>] [bit=<b>]
//                                             # transient state corruption:
//                                             #   p's next k inbound frames
//                                             #   are corrupted, any sender
//
// Link-shaped actions (partition/heal/isolate/link), pause/resume and the
// corruption kinds (flip/equivocate/scorrupt arm finite LinkPolicy budgets)
// apply directly to a LinkPolicy via apply_to_policy(); crash/restart are
// executor business (the sim worlds and the runtime transports own crash
// state). Corruption faults are transient by construction — the budget runs
// out, no heal needed — so they never unsettle a plan (see settles()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/link_policy.h"

namespace zdc::fault {

enum class FaultKind : std::uint8_t {
  kPartition,
  kHeal,
  kIsolate,
  kLink,
  kPause,
  kResume,
  kCrash,
  kRestart,
  kFlip,        ///< byte-flip the next `count` frames on link p -> q
  kEquivocate,  ///< divergent duplicate of p's next `count` broadcasts
  kStateCorrupt,  ///< byte-flip the next `count` frames inbound to p
};

const char* fault_kind_name(FaultKind kind);

struct FaultAction {
  TimePoint time = 0.0;
  FaultKind kind = FaultKind::kHeal;
  /// Subject process: isolate/pause/resume/crash/restart; `from` for kLink.
  ProcessId p = kNoProcess;
  /// `to` for kLink.
  ProcessId q = kNoProcess;
  /// Side A of a kPartition cut (the complement forms side B).
  std::vector<ProcessId> group;
  /// kLink overrides.
  double drop_prob = 0.0;
  double extra_delay_ms = 0.0;
  /// Corruption-kind budget and flip target (kFlip/kEquivocate/kStateCorrupt).
  /// `byte` defaults to corrupt.h's kMiddleByte sentinel (middle of frame).
  std::uint64_t count = 1;
  std::uint64_t byte = ~std::uint64_t{0};
  std::uint32_t bit = 0;
};

struct FaultPlan {
  std::vector<FaultAction> actions;

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] bool has(FaultKind kind) const;

  /// Stable-sorts actions by time (ties keep authoring order).
  void normalize();

  /// Processes crashed by the plan and never restarted afterwards.
  [[nodiscard]] std::vector<ProcessId> crashed_at_end() const;

  /// True iff the plan leaves the network mended and no process paused: every
  /// link fault is followed by a heal, every pause by a resume. Permanently
  /// crashed processes are allowed (that is ordinary crash-failure; see
  /// crashed_at_end()). Liveness is only asserted for settled plans.
  [[nodiscard]] bool settles() const;
};

/// Applies a link-shaped or pause-shaped action to the policy. Returns false
/// (and does nothing) for kCrash/kRestart, which the executor must handle.
bool apply_to_policy(const FaultAction& action, LinkPolicy& policy);

/// Formats an action / plan in the text syntax above.
std::string to_string(const FaultAction& action);
std::string to_string(const FaultPlan& plan);

/// Parses the text syntax. On failure returns false and, if `error` is given,
/// stores a one-line diagnostic naming the offending line.
bool parse_fault_plan(const std::string& text, FaultPlan* plan,
                      std::string* error = nullptr);

}  // namespace zdc::fault
