#include "fault/storage_fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace zdc::fault {

const char* storage_fault_kind_name(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kCrashAtWrite: return "write";
    case StorageFaultKind::kCrashAtSync: return "sync";
    case StorageFaultKind::kFlipOnRead: return "read";
  }
  return "?";
}

bool StorageFaultPlan::has(StorageFaultKind kind) const {
  return std::any_of(
      points.begin(), points.end(),
      [kind](const StorageFaultPoint& p) { return p.kind == kind; });
}

std::string to_string(const StorageFaultPoint& point) {
  std::ostringstream out;
  out << "@" << storage_fault_kind_name(point.kind) << " " << point.op_index;
  switch (point.kind) {
    case StorageFaultKind::kCrashAtWrite:
      out << " crash";
      if (point.keep == CrashKeep::kTorn) out << " torn=" << point.torn_bytes;
      if (point.keep == CrashKeep::kAll) out << " keep=all";
      break;
    case StorageFaultKind::kCrashAtSync:
      out << " crash";
      if (point.after_sync) out << " after";
      break;
    case StorageFaultKind::kFlipOnRead:
      out << " flip byte=" << point.flip_byte << " bit=" << point.flip_bit;
      break;
  }
  return out.str();
}

std::string to_string(const StorageFaultPlan& plan) {
  std::string out;
  for (const StorageFaultPoint& p : plan.points) {
    out += to_string(p);
    out += '\n';
  }
  return out;
}

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool fail(std::string* error, int line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
  return false;
}

}  // namespace

bool parse_storage_fault_plan(const std::string& text, StorageFaultPlan* plan,
                              std::string* error) {
  StorageFaultPlan out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0].size() < 2 || tokens[0][0] != '@') {
      return fail(error, line_no, "expected @write/@sync/@read");
    }
    StorageFaultPoint point;
    const std::string op = tokens[0].substr(1);
    if (op == "write") {
      point.kind = StorageFaultKind::kCrashAtWrite;
    } else if (op == "sync") {
      point.kind = StorageFaultKind::kCrashAtSync;
    } else if (op == "read") {
      point.kind = StorageFaultKind::kFlipOnRead;
    } else {
      return fail(error, line_no, "unknown op '@" + op + "'");
    }
    if (tokens.size() < 3 || !parse_u64(tokens[1], &point.op_index) ||
        point.op_index == 0) {
      return fail(error, line_no, "expected a 1-based operation count");
    }
    const std::string& verb = tokens[2];
    if (point.kind == StorageFaultKind::kFlipOnRead) {
      if (verb != "flip") return fail(error, line_no, "expected 'flip'");
      bool saw_byte = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::uint64_t v = 0;
        if (tokens[i].rfind("byte=", 0) == 0 &&
            parse_u64(tokens[i].substr(5), &v)) {
          point.flip_byte = v;
          saw_byte = true;
        } else if (tokens[i].rfind("bit=", 0) == 0 &&
                   parse_u64(tokens[i].substr(4), &v) && v < 8) {
          point.flip_bit = static_cast<std::uint32_t>(v);
        } else {
          return fail(error, line_no, "expected byte=<o> bit=<0..7>");
        }
      }
      if (!saw_byte) return fail(error, line_no, "flip needs byte=<offset>");
    } else {
      if (verb != "crash") return fail(error, line_no, "expected 'crash'");
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::uint64_t v = 0;
        if (point.kind == StorageFaultKind::kCrashAtWrite &&
            tokens[i].rfind("torn=", 0) == 0 &&
            parse_u64(tokens[i].substr(5), &v)) {
          point.keep = CrashKeep::kTorn;
          point.torn_bytes = v;
        } else if (point.kind == StorageFaultKind::kCrashAtWrite &&
                   tokens[i] == "keep=all") {
          point.keep = CrashKeep::kAll;
        } else if (point.kind == StorageFaultKind::kCrashAtSync &&
                   tokens[i] == "after") {
          point.after_sync = true;
        } else {
          return fail(error, line_no, "unknown modifier '" + tokens[i] + "'");
        }
      }
    }
    out.points.push_back(point);
  }
  *plan = std::move(out);
  return true;
}

}  // namespace zdc::fault
