#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/assert.h"

namespace zdc::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kIsolate: return "isolate";
    case FaultKind::kLink: return "link";
    case FaultKind::kPause: return "pause";
    case FaultKind::kResume: return "resume";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kFlip: return "flip";
    case FaultKind::kEquivocate: return "equivocate";
    case FaultKind::kStateCorrupt: return "scorrupt";
  }
  return "?";
}

bool FaultPlan::has(FaultKind kind) const {
  return std::any_of(actions.begin(), actions.end(),
                     [kind](const FaultAction& a) { return a.kind == kind; });
}

void FaultPlan::normalize() {
  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.time < b.time;
                   });
}

std::vector<ProcessId> FaultPlan::crashed_at_end() const {
  std::set<ProcessId> down;
  for (const FaultAction& a : actions) {
    if (a.kind == FaultKind::kCrash) down.insert(a.p);
    if (a.kind == FaultKind::kRestart) down.erase(a.p);
  }
  return {down.begin(), down.end()};
}

bool FaultPlan::settles() const {
  bool links_faulted = false;
  std::set<ProcessId> paused;
  for (const FaultAction& a : actions) {
    switch (a.kind) {
      case FaultKind::kPartition:
      case FaultKind::kIsolate:
      case FaultKind::kLink:
        links_faulted = true;
        break;
      case FaultKind::kHeal:
        links_faulted = false;
        break;
      case FaultKind::kPause:
        paused.insert(a.p);
        break;
      case FaultKind::kResume:
        paused.erase(a.p);
        break;
      case FaultKind::kCrash:
      case FaultKind::kRestart:
        break;
      case FaultKind::kFlip:
      case FaultKind::kEquivocate:
      case FaultKind::kStateCorrupt:
        // Transient by construction: a finite corruption budget drains on
        // its own, the network is mended once it does.
        break;
    }
  }
  return !links_faulted && paused.empty();
}

bool apply_to_policy(const FaultAction& action, LinkPolicy& policy) {
  switch (action.kind) {
    case FaultKind::kPartition:
      policy.partition(action.group);
      return true;
    case FaultKind::kHeal:
      policy.heal();
      return true;
    case FaultKind::kIsolate:
      policy.isolate(action.p);
      return true;
    case FaultKind::kLink: {
      LinkState state;
      state.drop_prob = action.drop_prob;
      state.extra_delay_ms = action.extra_delay_ms;
      policy.set_link(action.p, action.q, state);
      return true;
    }
    case FaultKind::kPause:
      policy.pause(action.p);
      return true;
    case FaultKind::kResume:
      policy.resume(action.p);
      return true;
    case FaultKind::kFlip:
      policy.corrupt_link(action.p, action.q, action.count,
                          CorruptSpec{action.byte, action.bit});
      return true;
    case FaultKind::kEquivocate:
      policy.equivocate(action.p, action.count);
      return true;
    case FaultKind::kStateCorrupt:
      policy.corrupt_inbound(action.p, action.count,
                             CorruptSpec{action.byte, action.bit});
      return true;
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      return false;
  }
  return false;
}

namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", ms);
  return buf;
}

/// Emits the non-default [count=] [byte=] [bit=] options of a corruption
/// action, so to_string(parse(text)) round-trips minimal plans minimally.
void append_corrupt_opts(std::ostringstream& out, const FaultAction& a) {
  if (a.count != 1) out << " count=" << a.count;
  if (a.byte != ~std::uint64_t{0}) out << " byte=" << a.byte;
  if (a.bit != 0) out << " bit=" << a.bit;
}

}  // namespace

std::string to_string(const FaultAction& a) {
  std::ostringstream out;
  out << "@" << format_ms(a.time) << " " << fault_kind_name(a.kind);
  switch (a.kind) {
    case FaultKind::kPartition: {
      for (ProcessId p : a.group) out << " " << p;
      out << " |";
      break;
    }
    case FaultKind::kHeal:
      break;
    case FaultKind::kLink:
      out << " " << a.p << " " << a.q;
      if (a.drop_prob > 0.0) out << " drop=" << format_ms(a.drop_prob);
      if (a.extra_delay_ms > 0.0) out << " delay=" << format_ms(a.extra_delay_ms);
      break;
    case FaultKind::kFlip:
      out << " " << a.p << " " << a.q;
      append_corrupt_opts(out, a);
      break;
    case FaultKind::kEquivocate:
      out << " " << a.p;
      if (a.count != 1) out << " count=" << a.count;
      break;
    case FaultKind::kStateCorrupt:
      out << " " << a.p;
      append_corrupt_opts(out, a);
      break;
    case FaultKind::kIsolate:
    case FaultKind::kPause:
    case FaultKind::kResume:
    case FaultKind::kCrash:
    case FaultKind::kRestart:
      out << " " << a.p;
      break;
  }
  return out.str();
}

std::string to_string(const FaultPlan& plan) {
  std::string out;
  for (const FaultAction& a : plan.actions) {
    out += to_string(a);
    out += '\n';
  }
  return out;
}

namespace {

bool fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

/// Strict: the whole token must be a number ("2nonsense" is rejected).
bool parse_number(const std::string& token, double* out) {
  try {
    std::size_t consumed = 0;
    *out = std::stod(token, &consumed);
    return consumed == token.size();
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& token, std::uint64_t* out) {
  try {
    std::size_t consumed = 0;
    const unsigned long long v = std::stoull(token, &consumed);
    if (consumed != token.size()) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_pid(const std::string& token, ProcessId* out) {
  try {
    std::size_t consumed = 0;
    const unsigned long v = std::stoul(token, &consumed);
    if (consumed != token.size()) return false;
    *out = static_cast<ProcessId>(v);
    return true;
  } catch (...) {
    return false;
  }
}

/// Consumes the trailing [count=] [byte=] [bit=] options of a corruption
/// verb. On failure stores the diagnostic in *why.
bool parse_corrupt_opts(std::istringstream& in, FaultAction* a,
                        std::string* why) {
  std::string opt;
  while (in >> opt) {
    bool ok = false;
    std::uint64_t v = 0;
    if (opt.rfind("count=", 0) == 0) {
      ok = parse_u64(opt.substr(6), &a->count) && a->count > 0;
    } else if (opt.rfind("byte=", 0) == 0) {
      ok = parse_u64(opt.substr(5), &a->byte);
    } else if (opt.rfind("bit=", 0) == 0) {
      ok = parse_u64(opt.substr(4), &v) && v < 8;
      a->bit = static_cast<std::uint32_t>(v);
    } else {
      *why = "unknown corruption option '" + opt + "'";
      return false;
    }
    if (!ok) {
      *why = "bad corruption option '" + opt + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_fault_plan(const std::string& text, FaultPlan* plan,
                      std::string* error) {
  ZDC_ASSERT(plan != nullptr);
  plan->actions.clear();
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream in(line);
    std::string at;
    if (!(in >> at)) continue;  // blank line
    if (at.size() < 2 || at[0] != '@') {
      return fail(error, line_no, "expected '@<time_ms>'");
    }
    FaultAction a;
    if (!parse_number(at.substr(1), &a.time)) {
      return fail(error, line_no, "bad time '" + at + "'");
    }
    std::string verb;
    if (!(in >> verb)) return fail(error, line_no, "missing action verb");

    if (verb == "heal") {
      a.kind = FaultKind::kHeal;
    } else if (verb == "partition") {
      a.kind = FaultKind::kPartition;
      std::string token;
      bool past_bar = false;
      while (in >> token) {
        if (token == "|") {
          past_bar = true;
          continue;
        }
        if (past_bar) continue;  // side B is implied; listed for readability
        ProcessId p = 0;
        if (!parse_pid(token, &p)) {
          return fail(error, line_no, "bad process id '" + token + "'");
        }
        a.group.push_back(p);
      }
      if (!past_bar) {
        return fail(error, line_no, "partition needs a '|' separator");
      }
      if (a.group.empty()) {
        return fail(error, line_no, "partition needs at least one id");
      }
    } else if (verb == "link") {
      a.kind = FaultKind::kLink;
      unsigned long from = 0;
      unsigned long to = 0;
      if (!(in >> from >> to)) {
        return fail(error, line_no, "link needs '<from> <to>'");
      }
      a.p = static_cast<ProcessId>(from);
      a.q = static_cast<ProcessId>(to);
      std::string opt;
      while (in >> opt) {
        bool ok = false;
        if (opt.rfind("drop=", 0) == 0) {
          ok = parse_number(opt.substr(5), &a.drop_prob);
        } else if (opt.rfind("delay=", 0) == 0) {
          ok = parse_number(opt.substr(6), &a.extra_delay_ms);
        } else {
          return fail(error, line_no, "unknown link option '" + opt + "'");
        }
        if (!ok) {
          return fail(error, line_no, "bad link option '" + opt + "'");
        }
      }
    } else if (verb == "flip") {
      a.kind = FaultKind::kFlip;
      unsigned long from = 0;
      unsigned long to = 0;
      if (!(in >> from >> to)) {
        return fail(error, line_no, "flip needs '<from> <to>'");
      }
      a.p = static_cast<ProcessId>(from);
      a.q = static_cast<ProcessId>(to);
      std::string why;
      if (!parse_corrupt_opts(in, &a, &why)) return fail(error, line_no, why);
    } else if (verb == "equivocate" || verb == "scorrupt") {
      a.kind = verb == "equivocate" ? FaultKind::kEquivocate
                                    : FaultKind::kStateCorrupt;
      unsigned long p = 0;
      if (!(in >> p)) {
        return fail(error, line_no, verb + " needs a process id");
      }
      a.p = static_cast<ProcessId>(p);
      std::string why;
      if (!parse_corrupt_opts(in, &a, &why)) return fail(error, line_no, why);
      if (a.kind == FaultKind::kEquivocate &&
          (a.byte != ~std::uint64_t{0} || a.bit != 0)) {
        return fail(error, line_no,
                    "equivocate takes no byte=/bit= (the fabric varies the "
                    "divergent copy per receiver)");
      }
    } else {
      if (verb == "isolate") {
        a.kind = FaultKind::kIsolate;
      } else if (verb == "pause") {
        a.kind = FaultKind::kPause;
      } else if (verb == "resume") {
        a.kind = FaultKind::kResume;
      } else if (verb == "crash") {
        a.kind = FaultKind::kCrash;
      } else if (verb == "restart") {
        a.kind = FaultKind::kRestart;
      } else {
        return fail(error, line_no, "unknown action '" + verb + "'");
      }
      unsigned long p = 0;
      if (!(in >> p)) {
        return fail(error, line_no, verb + " needs a process id");
      }
      a.p = static_cast<ProcessId>(p);
    }
    plan->actions.push_back(std::move(a));
  }
  plan->normalize();
  return true;
}

}  // namespace zdc::fault
