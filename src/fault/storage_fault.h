// Scripted *disk* fault schedules — the durability counterpart of the
// network-facing FaultPlan (fault_plan.h).
//
// A StorageFaultPlan is a list of crash / corruption points keyed by
// storage-operation counts instead of timestamps: "die during the 3rd
// append", "die right after the 2nd fsync", "flip a bit in the 1st read".
// Counting operations (not time) makes the points deterministic wherever the
// plan runs — the same plan fires at the same byte under the simulator, the
// recovery harness and the fuzz loop. The consumer is storage::FaultyEnv,
// which sits under the write-ahead log and applies the durability rules.
//
// Crash semantics (the adversarial union of kill -9 and power loss): bytes
// whose sync() completed always survive; at a crash point the *unsynced*
// tail survives per the scripted mode — all of it (kill -9 with the page
// cache flushed), none of it (power cut), or a torn prefix (the write was
// mid-sector). Recovery code must be correct under every mode.
//
// Text syntax — one point per line, '#' starts a comment:
//
//   @write <k> crash              # die during append #k: unsynced tail lost
//   @write <k> crash torn=<b>     # ... first b bytes of the tail survive
//   @write <k> crash keep=all     # ... every buffered byte survives
//   @sync <k> crash               # die during fsync #k: unsynced tail lost
//   @sync <k> crash after         # die just after fsync #k completed
//   @read <k> flip byte=<o> bit=<b>  # flip bit b of byte o of read #k
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zdc::fault {

enum class StorageFaultKind : std::uint8_t {
  kCrashAtWrite,  ///< die during append #op_index
  kCrashAtSync,   ///< die during (or, with `after`, just after) fsync #op_index
  kFlipOnRead,    ///< corrupt file read #op_index in flight
};

const char* storage_fault_kind_name(StorageFaultKind kind);

/// How much of the unsynced tail survives a crash point.
enum class CrashKeep : std::uint8_t {
  kNone,  ///< power-cut pessimism: only synced bytes survive
  kTorn,  ///< a prefix of the unsynced tail survives (torn final write)
  kAll,   ///< kill -9 with the page cache flushed: every byte survives
};

struct StorageFaultPoint {
  StorageFaultKind kind = StorageFaultKind::kCrashAtWrite;
  /// 1-based count of the triggering operation (append / sync / read).
  std::uint64_t op_index = 1;
  /// Crash points: what survives of the unsynced tail.
  CrashKeep keep = CrashKeep::kNone;
  std::uint64_t torn_bytes = 0;  ///< surviving tail prefix when keep == kTorn
  /// kCrashAtSync: fire after the fsync completed (data durable) instead of
  /// during it (data lost).
  bool after_sync = false;
  /// kFlipOnRead: which bit of which byte of the read contents to flip.
  std::uint64_t flip_byte = 0;
  std::uint32_t flip_bit = 0;
};

struct StorageFaultPlan {
  std::vector<StorageFaultPoint> points;

  [[nodiscard]] bool empty() const { return points.empty(); }
  [[nodiscard]] bool has(StorageFaultKind kind) const;
};

/// Formats a point / plan in the text syntax above.
std::string to_string(const StorageFaultPoint& point);
std::string to_string(const StorageFaultPlan& plan);

/// Parses the text syntax. On failure returns false and, if `error` is given,
/// stores a one-line diagnostic naming the offending line.
bool parse_storage_fault_plan(const std::string& text, StorageFaultPlan* plan,
                              std::string* error = nullptr);

}  // namespace zdc::fault
