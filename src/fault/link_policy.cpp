#include "fault/link_policy.h"

#include <algorithm>

#include "common/assert.h"

namespace zdc::fault {

LinkPolicy::LinkPolicy(std::uint32_t n)
    : n_(n),
      links_(static_cast<std::size_t>(n) * n),
      paused_(n, 0),
      corrupt_links_(static_cast<std::size_t>(n) * n),
      corrupt_inbound_(n),
      equivocate_(n, 0) {
  ZDC_ASSERT(n > 0);
}

LinkState LinkPolicy::link(ProcessId from, ProcessId to) const {
  ZDC_ASSERT(from < n_ && to < n_);
  if (!ever_faulted() || from == to) return LinkState{};
  common::MutexLock lock(mu_);
  return links_[static_cast<std::size_t>(from) * n_ + to];
}

void LinkPolicy::set_link(ProcessId from, ProcessId to, LinkState state) {
  ZDC_ASSERT(from < n_ && to < n_);
  common::MutexLock lock(mu_);
  links_[static_cast<std::size_t>(from) * n_ + to] = state;
  touch();
}

void LinkPolicy::partition(const std::vector<ProcessId>& side_a) {
  std::vector<bool> in_a(n_, false);
  for (ProcessId p : side_a) {
    ZDC_ASSERT(p < n_);
    in_a[p] = true;
  }
  common::MutexLock lock(mu_);
  for (ProcessId from = 0; from < n_; ++from) {
    for (ProcessId to = 0; to < n_; ++to) {
      if (in_a[from] != in_a[to]) {
        links_[static_cast<std::size_t>(from) * n_ + to].blocked = true;
      }
    }
  }
  touch();
}

void LinkPolicy::isolate(ProcessId p) {
  ZDC_ASSERT(p < n_);
  common::MutexLock lock(mu_);
  for (ProcessId q = 0; q < n_; ++q) {
    if (q == p) continue;
    links_[static_cast<std::size_t>(p) * n_ + q].blocked = true;
    links_[static_cast<std::size_t>(q) * n_ + p].blocked = true;
  }
  touch();
}

void LinkPolicy::heal() {
  common::MutexLock lock(mu_);
  std::fill(links_.begin(), links_.end(), LinkState{});
  touch();
}

void LinkPolicy::pause(ProcessId p) {
  ZDC_ASSERT(p < n_);
  common::MutexLock lock(mu_);
  paused_[p] = 1;
  touch();
}

void LinkPolicy::resume(ProcessId p) {
  ZDC_ASSERT(p < n_);
  common::MutexLock lock(mu_);
  paused_[p] = 0;
}

bool LinkPolicy::paused(ProcessId p) const {
  ZDC_ASSERT(p < n_);
  if (!ever_faulted()) return false;
  common::MutexLock lock(mu_);
  return paused_[p] != 0;
}

void LinkPolicy::corrupt_link(ProcessId from, ProcessId to,
                              std::uint64_t count, CorruptSpec spec) {
  ZDC_ASSERT(from < n_ && to < n_);
  common::MutexLock lock(mu_);
  CorruptBudget& budget = corrupt_links_[static_cast<std::size_t>(from) * n_ + to];
  budget.count += count;
  budget.spec = spec;
  touch();
}

void LinkPolicy::corrupt_inbound(ProcessId to, std::uint64_t count,
                                 CorruptSpec spec) {
  ZDC_ASSERT(to < n_);
  common::MutexLock lock(mu_);
  corrupt_inbound_[to].count += count;
  corrupt_inbound_[to].spec = spec;
  touch();
}

void LinkPolicy::equivocate(ProcessId from, std::uint64_t count) {
  ZDC_ASSERT(from < n_);
  common::MutexLock lock(mu_);
  equivocate_[from] += count;
  touch();
}

bool LinkPolicy::consume_corruption(ProcessId from, ProcessId to,
                                    CorruptSpec* spec) const {
  ZDC_ASSERT(from < n_ && to < n_);
  // Self-links are never faulted (same rule as link()): a process's loopback
  // is a memory move, not a wire.
  if (!ever_faulted() || from == to) return false;
  common::MutexLock lock(mu_);
  CorruptBudget& link = corrupt_links_[static_cast<std::size_t>(from) * n_ + to];
  CorruptBudget& budget = link.count > 0 ? link : corrupt_inbound_[to];
  if (budget.count == 0) return false;
  --budget.count;
  *spec = budget.spec;
  return true;
}

bool LinkPolicy::consume_equivocation(ProcessId from) const {
  ZDC_ASSERT(from < n_);
  if (!ever_faulted()) return false;
  common::MutexLock lock(mu_);
  if (equivocate_[from] == 0) return false;
  --equivocate_[from];
  return true;
}

}  // namespace zdc::fault
