#include "fault/nemesis.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"

namespace zdc::fault {

namespace {

FaultAction at(TimePoint t, FaultKind kind, ProcessId p = kNoProcess) {
  FaultAction a;
  a.time = t;
  a.kind = kind;
  a.p = p;
  return a;
}

}  // namespace

FaultPlan random_fault_plan(const NemesisConfig& cfg, std::uint64_t seed) {
  ZDC_ASSERT(cfg.n >= 2);
  common::Rng rng(seed ^ 0x6e656d6573697321ULL);  // "nemesis!"
  FaultPlan plan;

  std::vector<FaultKind> menu;
  if (cfg.allow_partition) menu.push_back(FaultKind::kPartition);
  if (cfg.allow_isolate) menu.push_back(FaultKind::kIsolate);
  if (cfg.allow_pause) menu.push_back(FaultKind::kPause);
  if (cfg.allow_link_degrade) menu.push_back(FaultKind::kLink);
  if (cfg.allow_crash) menu.push_back(FaultKind::kCrash);
  if (cfg.allow_corrupt) {
    menu.push_back(FaultKind::kFlip);
    menu.push_back(FaultKind::kEquivocate);
    menu.push_back(FaultKind::kStateCorrupt);
  }
  if (menu.empty()) return plan;

  std::uint32_t crashes_used = 0;
  std::vector<bool> crash_target(cfg.n, false);

  for (std::uint32_t i = 0; i < cfg.disturbances; ++i) {
    const FaultKind kind = menu[rng.next_below(menu.size())];
    const TimePoint t0 = rng.uniform(0.0, cfg.horizon_ms * 0.7);
    const TimePoint t1 =
        std::min(t0 + rng.uniform(cfg.horizon_ms * 0.1, cfg.horizon_ms * 0.5),
                 cfg.horizon_ms * 0.95);

    switch (kind) {
      case FaultKind::kPartition: {
        // A random nonempty proper subset forms side A.
        FaultAction a = at(t0, FaultKind::kPartition);
        for (ProcessId p = 0; p < cfg.n; ++p) {
          if (rng.chance(0.5)) a.group.push_back(p);
        }
        if (a.group.empty()) a.group.push_back(rng.next_below(cfg.n));
        if (a.group.size() == cfg.n) a.group.pop_back();
        plan.actions.push_back(std::move(a));
        plan.actions.push_back(at(t1, FaultKind::kHeal));
        break;
      }
      case FaultKind::kIsolate: {
        const ProcessId p = rng.next_below(cfg.n);
        plan.actions.push_back(at(t0, FaultKind::kIsolate, p));
        plan.actions.push_back(at(t1, FaultKind::kHeal));
        break;
      }
      case FaultKind::kPause: {
        const ProcessId p = rng.next_below(cfg.n);
        plan.actions.push_back(at(t0, FaultKind::kPause, p));
        plan.actions.push_back(at(t1, FaultKind::kResume, p));
        break;
      }
      case FaultKind::kLink: {
        FaultAction a = at(t0, FaultKind::kLink, rng.next_below(cfg.n));
        do {
          a.q = rng.next_below(cfg.n);
        } while (a.q == a.p);
        if (rng.chance(0.5)) a.drop_prob = rng.uniform(0.2, 0.9);
        if (a.drop_prob == 0.0 || rng.chance(0.5)) {
          a.extra_delay_ms = rng.uniform(0.5, cfg.max_extra_delay_ms);
        }
        plan.actions.push_back(std::move(a));
        plan.actions.push_back(at(t1, FaultKind::kHeal));
        break;
      }
      case FaultKind::kCrash: {
        // Bound concurrent (and, without restarts, total) crashes by f so
        // the runs the liveness assertions quantify over stay in-model.
        if (crashes_used >= cfg.f) break;
        ProcessId p = rng.next_below(cfg.n);
        if (crash_target[p]) break;  // one crash window per process
        crash_target[p] = true;
        ++crashes_used;
        plan.actions.push_back(at(t0, FaultKind::kCrash, p));
        if (cfg.allow_restart) {
          plan.actions.push_back(at(t1, FaultKind::kRestart, p));
          --crashes_used;  // the window closes; budget frees up
        }
        break;
      }
      // Corruption budgets drain on delivery, so a window is one action —
      // no close needed. `byte` keeps its kMiddleByte default; a random bit
      // varies what the flip actually hits.
      case FaultKind::kFlip: {
        FaultAction a = at(t0, FaultKind::kFlip, rng.next_below(cfg.n));
        do {
          a.q = rng.next_below(cfg.n);
        } while (a.q == a.p);
        a.count = 1 + rng.next_below(3);
        a.bit = static_cast<std::uint32_t>(rng.next_below(8));
        plan.actions.push_back(std::move(a));
        break;
      }
      case FaultKind::kEquivocate: {
        FaultAction a = at(t0, FaultKind::kEquivocate, rng.next_below(cfg.n));
        a.count = 1 + rng.next_below(2);
        plan.actions.push_back(std::move(a));
        break;
      }
      case FaultKind::kStateCorrupt: {
        FaultAction a = at(t0, FaultKind::kStateCorrupt, rng.next_below(cfg.n));
        a.count = 1 + rng.next_below(3);
        a.bit = static_cast<std::uint32_t>(rng.next_below(8));
        plan.actions.push_back(std::move(a));
        break;
      }
      case FaultKind::kHeal:
      case FaultKind::kResume:
      case FaultKind::kRestart:
        break;  // never drawn
    }
  }

  if (cfg.settle && !plan.actions.empty()) {
    plan.actions.push_back(at(cfg.horizon_ms, FaultKind::kHeal));
  }
  plan.normalize();
  return plan;
}

}  // namespace zdc::fault
