// Seeded random nemesis-plan generation for property tests and sweeps.
//
// random_fault_plan() draws a handful of fault *windows* — a disturbance
// opening at t0 and closing at t1 (heal / resume / restart) — entirely from
// one seeded Rng, so a (config, seed) pair always yields the same plan. The
// generated plans are adversarial but survivable:
//
//   * at most f processes are ever crashed (permanently when restarts are
//     disabled; bounced crash->restart windows when enabled);
//   * every pause is matched by a resume, and unless `settle` is cleared the
//     plan ends with a global heal — so a run that executes the whole plan
//     re-enters a fault-free period and liveness can be asserted on top of
//     unconditional safety.
//
// Restart windows are only safe for crash-recovery protocols (an amnesiac
// restart of a volatile protocol is *expected* to be able to violate
// agreement — see tests/recovery_test.cpp); keep allow_restart=false for
// L-/P-Consensus and the other volatile stacks.
//
// Threading: plan generation is pure (seeded Rng in, FaultPlan out) and holds
// no locks; concurrency only enters when a driver *applies* a plan to the
// mutex-guarded fault::LinkPolicy (see link_policy.h for its annotations).
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"

namespace zdc::fault {

struct NemesisConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  /// Disturbance windows all open and close within [0, horizon_ms]; the
  /// final heal lands at horizon_ms.
  TimePoint horizon_ms = 30.0;
  /// Number of fault windows to draw.
  std::uint32_t disturbances = 3;
  bool allow_partition = true;
  bool allow_isolate = true;
  bool allow_pause = true;
  bool allow_link_degrade = true;
  bool allow_crash = true;
  /// Crashed processes come back (crash-recovery model). Only enable for
  /// protocols backed by StableStorage.
  bool allow_restart = false;
  /// Draw corruption windows too: link byte-flips, sender equivocation and
  /// transient inbound-state corruption (per-delivery budgets, so they
  /// drain whenever traffic next flows — no close action needed). With
  /// frame checksums on these are detectable drops and must not cost
  /// safety; see docs/FAULTS.md.
  bool allow_corrupt = false;
  /// Upper bound of the per-link delay-spike override.
  double max_extra_delay_ms = 5.0;
  /// Append a global heal at horizon_ms so the plan settles.
  bool settle = true;
};

FaultPlan random_fault_plan(const NemesisConfig& cfg, std::uint64_t seed);

}  // namespace zdc::fault
