// The one table every message crosses: per-link fault state shared by all
// three fabrics (sim::LanModel, runtime::InprocNetwork, runtime::UdpNetwork).
//
// A nemesis (scripted or generated — see fault_plan.h) mutates this table;
// the fabrics consult it on every send/delivery and translate the state into
// their own physics:
//
//   * blocked      — the link is cut (a partition edge). Reliable-channel
//                    traffic must *wait out* the cut, not vanish: the
//                    simulator parks the message and re-injects it on heal,
//                    the UDP fabric simply keeps the ARQ retransmitting, and
//                    the mailbox fabric re-queues until the link opens.
//                    Best-effort traffic (heartbeats, WAB datagrams) is lost.
//   * drop_prob    — per-message datagram loss. On the UDP fabric this drops
//                    raw datagrams (the ARQ recovers); fabrics without a
//                    datagram level surface it as retransmission *delay* on
//                    the reliable channel and as loss on best-effort traffic.
//   * extra_delay_ms — a delay spike added to every traversal (asymmetric
//                    links: set it one direction only).
//
// Per-process `paused` models a stopped-but-alive process (SIGSTOP, GC pause,
// VM migration): its handlers and timers do not run until resume, its inbound
// traffic queues up, and — crucially — its heartbeats stop, so a real ◇P
// implementation falsely suspects it. Pause is not crash: no state is lost.
//
// Thread safety: mutations and reads are mutex-guarded; a relaxed `active_`
// flag lets the fabrics skip the lock entirely until the first fault is ever
// injected, so fault-free runs pay one atomic load per message.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace zdc::fault {

struct LinkState {
  bool blocked = false;
  double drop_prob = 0.0;
  double extra_delay_ms = 0.0;

  [[nodiscard]] bool clean() const {
    return !blocked && drop_prob == 0.0 && extra_delay_ms == 0.0;
  }
};

/// One armed byte-flip: which byte (corrupt.h's kMiddleByte = middle of the
/// frame) and which bit the fabric must flip in the next frame it carries.
struct CorruptSpec {
  std::uint64_t byte = 0;
  std::uint32_t bit = 0;
};

class LinkPolicy {
 public:
  explicit LinkPolicy(std::uint32_t n);

  LinkPolicy(const LinkPolicy&) = delete;
  LinkPolicy& operator=(const LinkPolicy&) = delete;

  [[nodiscard]] std::uint32_t size() const { return n_; }

  /// Current state of the directed link from -> to. Self-links are never
  /// faulted (a process can always talk to itself).
  [[nodiscard]] LinkState link(ProcessId from, ProcessId to) const
      ZDC_EXCLUDES(mu_);

  /// Overrides one directed link.
  void set_link(ProcessId from, ProcessId to, LinkState state)
      ZDC_EXCLUDES(mu_);

  /// Cuts every link crossing the {side_a | rest} cut, both directions.
  /// Links inside each side are left untouched.
  void partition(const std::vector<ProcessId>& side_a) ZDC_EXCLUDES(mu_);

  /// Cuts every link to and from p (p keeps talking to itself).
  void isolate(ProcessId p) ZDC_EXCLUDES(mu_);

  /// Clears every link override (partitions, isolations, drop/delay
  /// overrides). Pause state is NOT touched — heal mends the network, not
  /// the processes.
  void heal() ZDC_EXCLUDES(mu_);

  void pause(ProcessId p) ZDC_EXCLUDES(mu_);
  void resume(ProcessId p) ZDC_EXCLUDES(mu_);
  [[nodiscard]] bool paused(ProcessId p) const ZDC_EXCLUDES(mu_);

  // --- Corruption budgets (FaultPlan flip / scorrupt / equivocate) ---
  //
  // Unlike the LinkState overrides above, corruption faults are *transient*:
  // each armer grants a finite budget of corrupted frames, and the fabrics
  // draw the budget down via the consume_* calls on the delivery path. A
  // fault plan never needs to "heal" corruption — the budget running out is
  // the end of the burst, which is exactly the transient-fault model the
  // self-stabilization oracle (check/invariants.h) reasons about.

  /// Arms `count` byte-flips on the directed link from -> to.
  void corrupt_link(ProcessId from, ProcessId to, std::uint64_t count,
                    CorruptSpec spec) ZDC_EXCLUDES(mu_);

  /// Arms `count` byte-flips on *every* frame inbound to p regardless of the
  /// sender — the transient-state-corruption fault: p's receive path is
  /// briefly garbage, whatever the source.
  void corrupt_inbound(ProcessId to, std::uint64_t count, CorruptSpec spec)
      ZDC_EXCLUDES(mu_);

  /// Arms `count` equivocations at sender p: the fabric delivers a divergent
  /// duplicate of p's next `count` broadcasts alongside the originals.
  void equivocate(ProcessId from, std::uint64_t count) ZDC_EXCLUDES(mu_);

  /// Draws one corruption from the from->to link budget, falling back to the
  /// receiver's inbound budget. Returns true and fills `*spec` iff a budget
  /// was armed and non-empty. const because fabrics hold const views; the
  /// budgets are mutable state guarded by mu_.
  [[nodiscard]] bool consume_corruption(ProcessId from, ProcessId to,
                                        CorruptSpec* spec) const
      ZDC_EXCLUDES(mu_);

  /// Draws one equivocation from sender p's budget.
  [[nodiscard]] bool consume_equivocation(ProcessId from) const
      ZDC_EXCLUDES(mu_);

  /// True once any fault was ever injected; fabrics use it as a lock-free
  /// fast path (false => every link clean, nobody paused).
  [[nodiscard]] bool ever_faulted() const {
    return active_.load(std::memory_order_acquire);
  }

 private:
  void touch() { active_.store(true, std::memory_order_release); }

  const std::uint32_t n_;
  mutable common::Mutex mu_;
  std::atomic<bool> active_{false};
  /// n*n, row-major [from*n + to]
  std::vector<LinkState> links_ ZDC_GUARDED_BY(mu_);
  std::vector<std::uint8_t> paused_ ZDC_GUARDED_BY(mu_);

  struct CorruptBudget {
    std::uint64_t count = 0;
    CorruptSpec spec;
  };
  /// mutable: consumed on the (const) fabric delivery path, see header note.
  /// n*n row-major link budgets; n inbound budgets; n equivocation budgets.
  mutable std::vector<CorruptBudget> corrupt_links_ ZDC_GUARDED_BY(mu_);
  mutable std::vector<CorruptBudget> corrupt_inbound_ ZDC_GUARDED_BY(mu_);
  mutable std::vector<std::uint64_t> equivocate_ ZDC_GUARDED_BY(mu_);
};

}  // namespace zdc::fault
