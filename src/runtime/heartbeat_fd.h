// Heartbeat-based ◇P failure detector with adaptive timeouts, plus the
// classic Ω reduction (leader := lowest non-suspected process).
//
// Every `interval_ms` the module broadcasts a heartbeat on the kHeartbeat
// channel and checks each peer's age. A peer silent for longer than its
// (per-peer) timeout is suspected; a heartbeat from a suspected peer revokes
// the suspicion and *grows that peer's timeout*, which bounds the number of
// false suspicions in any run with eventually-bounded delays — the standard
// argument that the implementation satisfies ◇P's Eventual Strong Accuracy in
// partially-synchronous executions, while Strong Completeness follows from
// crashed processes staying silent forever.
//
// Threading: all calls (ticks, on_heartbeat, estimator reads) happen on the
// owning process's worker thread, so the module needs no internal locking and
// carries no ZDC_GUARDED_BY annotations — the estimator vectors are
// thread-confined, not shared. The only cross-thread surface is the
// SuspectView output, published through the `suspected_` atomics (and the
// false_suspicions_ counter); anything else read off-worker (e.g.
// effective_timeout_ms) is test-only and racy by contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fd/failure_detector.h"
#include "obs/metrics.h"
#include "runtime/transport.h"

namespace zdc::runtime {

class HeartbeatFd final : public fd::SuspectView {
 public:
  struct Config {
    double interval_ms = 10.0;
    /// Timeout before the first inter-arrival samples exist (and the fixed
    /// timeout when `adaptive` is off).
    double initial_timeout_ms = 60.0;
    /// Added to a peer's timeout on every false suspicion — the growth that
    /// bounds false suspicions in partially-synchronous runs, independent of
    /// the adaptive estimate below.
    double timeout_increment_ms = 60.0;
    /// Adaptive timeout (Jacobson/Karels over heartbeat inter-arrival gaps):
    /// suspect after mean + deviation_factor·dev + margin_ms (+ accumulated
    /// false-suspicion bonus), floored at min_timeout_ms. Tracks the actual
    /// load instead of a guess: tight on an idle loopback, slack under
    /// scheduler noise or nemesis delay spikes.
    bool adaptive = true;
    double deviation_factor = 4.0;
    double margin_ms = 20.0;
    double min_timeout_ms = 20.0;
    /// Staleness bound for leader-lease endorsements: a peer's endorsement
    /// only counts while its latest endorsing heartbeat is younger than
    /// this, and a gap of at least this long breaks its endorsement streak.
    /// Must equal the lease length the service layer serves reads under
    /// (runtime_node wires RunOptions::service.lease_ms in here).
    double endorsement_stale_ms = 80.0;
    /// Optional metrics sink (suspicions, timeout adaptations), labeled by
    /// the owning process. nullptr = metrics off.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// `on_change` fires (on the worker thread) whenever the suspect set — and
  /// hence possibly the derived leader — changed.
  HeartbeatFd(ProcessId self, Transport& net, Config cfg,
              std::function<void()> on_change);

  /// Schedules the periodic tick. Call once, before traffic starts.
  void start();

  /// Wire-in from the node's kHeartbeat demux. `endorsed_leader` is the
  /// sender's current Ω estimate, carried in the heartbeat payload — the
  /// lease-endorsement input for read-index serving (kNoProcess when the
  /// payload is absent or malformed: liveness still counts, endorsement
  /// does not).
  void on_heartbeat(ProcessId from, ProcessId endorsed_leader = kNoProcess);

  /// Call on the worker thread after a Transport::restart(p): the pending
  /// tick timer died with the old incarnation, so the periodic chain must be
  /// re-armed. Resets every silence clock first — the outage must not count
  /// against peers (they were heartbeating into a dead socket).
  void restart_on_worker();

  // SuspectView (the ◇P output). Readable from any thread (atomic flags);
  // protocols read it on the worker, tests poll it from outside.
  [[nodiscard]] bool suspects(ProcessId p) const override;

  /// Derived Ω view (lowest non-suspected process).
  [[nodiscard]] const fd::OmegaView& omega() const { return omega_; }

  [[nodiscard]] std::uint64_t false_suspicions() const {
    return false_suspicions_.load(std::memory_order_relaxed);
  }

  /// The silence threshold currently applied to peer p (worker thread only;
  /// exposed for tests and diagnostics).
  [[nodiscard]] double effective_timeout_ms(ProcessId p) const;

  /// Milliseconds since a majority of the group last *endorsed* this
  /// process as leader — the (⌈n/2⌉)-th freshest age among heartbeats whose
  /// payload named self as the sender's Ω estimate (self counts as age 0; a
  /// peer whose latest heartbeat named someone else counts as +inf, i.e.
  /// endorsements are revoked the moment the peer switches). Worker thread
  /// only. This is the lease-freshness input for read-index serving: a
  /// leader a majority no longer endorses cannot rule out another replica
  /// replying to writes under its own fresh lease.
  [[nodiscard]] double ms_since_quorum_endorsement() const;

  /// Milliseconds this process has CONTINUOUSLY held a majority
  /// endorsement: there is a fixed majority whose members have each
  /// endorsed self in heartbeats with no gap of `endorsement_stale_ms` or
  /// more since the streak began (per-peer `endorse_since_` clocks; self
  /// counts from construction). 0 whenever the endorsement is not
  /// currently fresh. Worker thread only. The service layer requires a
  /// streak of at least one full lease before a NEW leader may reply to
  /// clients — that wait is what lets the previous holder's lease expire
  /// everywhere before this one starts serving (the no-two-lease-holders
  /// half of the read-index argument; see service_group.h).
  [[nodiscard]] double quorum_endorsement_streak_ms() const;

 private:
  using Clock = std::chrono::steady_clock;

  void tick();

  const ProcessId self_;
  Transport& net_;
  const Config cfg_;
  std::function<void()> on_change_;

  // All per-peer estimator state is worker-thread-only.
  std::vector<Clock::time_point> last_seen_;
  std::vector<Clock::time_point> last_endorsed_me_;
  std::vector<bool> endorses_me_;  ///< peer's latest heartbeat named self
  /// Start of peer p's current unbroken endorsement run (reset whenever the
  /// peer stopped endorsing or left a >= endorsement_stale_ms gap).
  std::vector<Clock::time_point> endorse_since_;
  Clock::time_point epoch_;  ///< construction time (self's held-since)
  std::vector<double> bonus_ms_;     ///< accumulated false-suspicion bonus
  std::vector<double> mean_gap_ms_;  ///< EWMA of inter-arrival gaps
  std::vector<double> dev_gap_ms_;   ///< EWMA of gap deviation
  std::vector<bool> have_gap_;       ///< estimator warmed up for this peer
  std::unique_ptr<std::atomic<bool>[]> suspected_;
  std::uint32_t n_;
  fd::OmegaFromSuspects omega_;
  std::atomic<std::uint64_t> false_suspicions_{0};
  bool started_ = false;
  // Pre-registered handles (null when cfg_.metrics is null). Updated on the
  // worker thread; the counters themselves are thread-safe atomics.
  obs::Counter* suspicions_ctr_ = nullptr;
  obs::Counter* adaptations_ctr_ = nullptr;
};

}  // namespace zdc::runtime
