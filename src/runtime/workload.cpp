#include "runtime/workload.h"

#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace zdc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

RuntimeWorkloadResult run_runtime_workload(const RuntimeWorkloadConfig& cfg) {
  const std::uint32_t n = cfg.cluster.group.n;

  struct Shared {
    common::Mutex mu;
    /// key -> submit time
    std::map<std::string, Clock::time_point> sent ZDC_GUARDED_BY(mu);
    /// key -> first delivery anywhere
    std::map<std::string, Clock::time_point> first_seen ZDC_GUARDED_BY(mu);
    std::vector<std::vector<std::string>> histories ZDC_GUARDED_BY(mu);
    std::vector<std::uint32_t> counts ZDC_GUARDED_BY(mu);
  };
  Shared shared;
  {
    common::MutexLock lock(shared.mu);
    shared.histories.resize(n);
    shared.counts.assign(n, 0);
  }

  RuntimeCluster cluster(
      cfg.cluster, [&shared](ProcessId p, const abcast::AppMessage& m) {
        const auto now = Clock::now();
        common::MutexLock lock(shared.mu);
        shared.first_seen.emplace(m.payload, now);  // first delivery wins
        shared.histories[p].push_back(m.payload);
        ++shared.counts[p];
      });
  cluster.start();
  const auto start = Clock::now();

  // Poisson arrivals from a driver thread; sender chosen uniformly.
  common::Rng rng(cfg.seed);
  const double mean_gap_ms = 1000.0 / cfg.throughput_per_s;
  const std::string filler(cfg.payload_bytes, 'x');
  for (std::uint32_t i = 0; i < cfg.message_count; ++i) {
    const double gap = rng.exponential(mean_gap_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(gap));
    const auto sender = static_cast<ProcessId>(rng.next_below(n));
    const std::string key =
        "w:" + std::to_string(sender) + ":" + std::to_string(i) + ":" + filler;
    {
      common::MutexLock lock(shared.mu);
      shared.sent.emplace(key, Clock::now());
    }
    cluster.node(sender).a_broadcast(key);
  }

  // Wait until every replica delivered everything (or timeout).
  const bool complete = RuntimeCluster::wait_until(
      [&] {
        common::MutexLock lock(shared.mu);
        for (std::uint32_t p = 0; p < n; ++p) {
          if (shared.counts[p] < cfg.message_count) return false;
        }
        return true;
      },
      cfg.timeout_ms);
  const auto end = Clock::now();
  cluster.shutdown();
  // Workers are joined, but keep the post-processing reads under the lock
  // anyway: it is uncontended now, and the guarded-by discipline stays
  // checkable instead of relying on the join for the happens-before edge.
  common::MutexLock lock(shared.mu);

  RuntimeWorkloadResult result;
  result.complete = complete;
  result.duration_ms = ms_between(start, end);
  for (const auto& history : shared.histories) {
    result.delivered_total += history.size();
  }

  const auto warmup_cutoff = static_cast<std::uint32_t>(
      cfg.warmup_fraction * static_cast<double>(cfg.message_count));
  std::uint32_t index = 0;
  for (const auto& [key, sent_at] : shared.sent) {
    (void)index;
    const auto it = shared.first_seen.find(key);
    if (it == shared.first_seen.end()) continue;
    // Parse the submission index back out of the key for warmup filtering.
    const auto first_colon = key.find(':', 2);
    const auto second_colon = key.find(':', first_colon + 1);
    const auto msg_index = static_cast<std::uint32_t>(std::atoi(
        key.substr(first_colon + 1, second_colon - first_colon - 1).c_str()));
    if (msg_index < warmup_cutoff) continue;
    result.latency_ms.add(ms_between(sent_at, it->second));
  }

  // Total order: pairwise prefix consistency.
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const auto& ha = shared.histories[a];
      const auto& hb = shared.histories[b];
      const std::size_t len = std::min(ha.size(), hb.size());
      for (std::size_t i = 0; i < len; ++i) {
        if (ha[i] != hb[i]) {
          result.total_order_ok = false;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace zdc::runtime
