#include "runtime/workload.h"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace zdc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

RuntimeWorkloadResult run_runtime_workload(const RuntimeWorkloadConfig& cfg) {
  const std::uint32_t n = cfg.cluster.group.n;

  struct Shared {
    common::Mutex mu;
    /// key -> submit time
    std::map<std::string, Clock::time_point> sent ZDC_GUARDED_BY(mu);
    /// key -> first delivery anywhere
    std::map<std::string, Clock::time_point> first_seen ZDC_GUARDED_BY(mu);
    std::vector<std::vector<std::string>> histories ZDC_GUARDED_BY(mu);
    std::vector<std::uint32_t> counts ZDC_GUARDED_BY(mu);
    /// One accumulator per replica: each is only ever written by that
    /// replica's worker thread, then combined after the join with merge().
    std::vector<common::OnlineStats> per_replica ZDC_GUARDED_BY(mu);
  };
  Shared shared;
  {
    common::MutexLock lock(shared.mu);
    shared.histories.resize(n);
    shared.counts.assign(n, 0);
    shared.per_replica.resize(n);
  }

  obs::MetricsRegistry* metrics = cfg.cluster.metrics;
  // Two histograms instead of the old single zdc_workload_latency_ms:
  // `adeliver` is submit → a-deliver at each replica (ordering latency),
  // `reply` is submit → the submitting node's own delivery — the moment a
  // client of that node would see its reply. The split keeps the exported
  // numbers honest next to service paths that never a-deliver at all
  // (read-index reads report under zdc_service_client_latency_ms instead).
  obs::Histogram* adeliver_hist =
      metrics != nullptr
          ? &metrics->histogram("zdc_workload_adeliver_latency_ms", {})
          : nullptr;
  obs::Histogram* reply_hist =
      metrics != nullptr
          ? &metrics->histogram("zdc_workload_reply_latency_ms", {})
          : nullptr;

  RuntimeCluster cluster(
      cfg.cluster,
      [&shared, adeliver_hist, reply_hist](ProcessId p,
                                           const abcast::AppMessage& m) {
        const auto now = Clock::now();
        common::MutexLock lock(shared.mu);
        shared.first_seen.emplace(m.payload, now);  // first delivery wins
        shared.histories[p].push_back(m.payload);
        ++shared.counts[p];
        const auto sent_it = shared.sent.find(m.payload);
        if (sent_it != shared.sent.end()) {
          const double lat = ms_between(sent_it->second, now);
          shared.per_replica[p].add(lat);
          if (adeliver_hist != nullptr) adeliver_hist->observe(lat);
          if (reply_hist != nullptr && p == m.id.sender) {
            reply_hist->observe(lat);
          }
        }
      });
  cluster.start();
  const auto start = Clock::now();

  // Periodic metrics snapshots: a polling thread exports the registry as JSON
  // every snapshot_period_ms. Polls in 1ms steps so teardown is prompt.
  std::atomic<bool> snapshots_done{false};
  std::thread snapshot_thread;
  const bool snapshots_on = cfg.snapshot_period_ms > 0.0 &&
                            cfg.on_snapshot != nullptr && metrics != nullptr;
  if (snapshots_on) {
    snapshot_thread = std::thread([&cfg, &snapshots_done, metrics] {
      auto next = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         cfg.snapshot_period_ms));
      while (!snapshots_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        if (Clock::now() >= next) {
          cfg.on_snapshot(obs::to_json(metrics->snapshot()));
          next += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double, std::milli>(
                  cfg.snapshot_period_ms));
        }
      }
    });
  }

  // Poisson arrivals from a driver thread; sender chosen uniformly.
  common::Rng rng(cfg.seed);
  const double mean_gap_ms = 1000.0 / cfg.throughput_per_s;
  const std::string filler(cfg.payload_bytes, 'x');
  for (std::uint32_t i = 0; i < cfg.message_count; ++i) {
    const double gap = rng.exponential(mean_gap_ms);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(gap));
    const auto sender = static_cast<ProcessId>(rng.next_below(n));
    const std::string key =
        "w:" + std::to_string(sender) + ":" + std::to_string(i) + ":" + filler;
    {
      common::MutexLock lock(shared.mu);
      shared.sent.emplace(key, Clock::now());
    }
    cluster.node(sender).a_broadcast(key);
  }

  // Wait until every replica delivered everything (or timeout).
  const bool complete = RuntimeCluster::wait_until(
      [&] {
        common::MutexLock lock(shared.mu);
        for (std::uint32_t p = 0; p < n; ++p) {
          if (shared.counts[p] < cfg.message_count) return false;
        }
        return true;
      },
      cfg.timeout_ms);
  const auto end = Clock::now();
  cluster.shutdown();
  if (snapshots_on) {
    snapshots_done.store(true, std::memory_order_release);
    snapshot_thread.join();
    // One final snapshot so short runs always produce at least one export.
    cfg.on_snapshot(obs::to_json(metrics->snapshot()));
  }
  // Workers are joined, but keep the post-processing reads under the lock
  // anyway: it is uncontended now, and the guarded-by discipline stays
  // checkable instead of relying on the join for the happens-before edge.
  common::MutexLock lock(shared.mu);

  RuntimeWorkloadResult result;
  result.complete = complete;
  result.duration_ms = ms_between(start, end);
  for (const auto& history : shared.histories) {
    result.delivered_total += history.size();
  }
  // Parallel-Welford combine of the per-worker accumulators.
  for (const auto& stats : shared.per_replica) {
    result.replica_latency_ms.merge(stats);
  }

  const auto warmup_cutoff = static_cast<std::uint32_t>(
      cfg.warmup_fraction * static_cast<double>(cfg.message_count));
  std::uint32_t index = 0;
  for (const auto& [key, sent_at] : shared.sent) {
    (void)index;
    const auto it = shared.first_seen.find(key);
    if (it == shared.first_seen.end()) continue;
    // Parse the submission index back out of the key for warmup filtering.
    const auto first_colon = key.find(':', 2);
    const auto second_colon = key.find(':', first_colon + 1);
    const auto msg_index = static_cast<std::uint32_t>(std::atoi(
        key.substr(first_colon + 1, second_colon - first_colon - 1).c_str()));
    if (msg_index < warmup_cutoff) continue;
    result.latency_ms.add(ms_between(sent_at, it->second));
  }

  // Total order: pairwise prefix consistency.
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      const auto& ha = shared.histories[a];
      const auto& hb = shared.histories[b];
      const std::size_t len = std::min(ha.size(), hb.size());
      for (std::size_t i = 0; i < len; ++i) {
        if (ha[i] != hb[i]) {
          result.total_order_ok = false;
          break;
        }
      }
    }
  }
  return result;
}

}  // namespace zdc::runtime
