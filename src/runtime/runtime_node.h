// Assembly of a full replica on the threaded runtime: transport demux +
// heartbeat failure detector + a pluggable atomic-broadcast protocol.
//
// RuntimeCluster builds n such replicas over one InprocNetwork — the
// in-process stand-in for the paper's 4-workstation cluster — and is what the
// examples and the integration tests run against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abcast/abcast.h"
#include "abcast/batching.h"
#include "common/stable_storage.h"
#include "obs/run_options.h"
#include "obs/runtime_trace.h"
#include "runtime/heartbeat_fd.h"
#include "runtime/inproc_net.h"
#include "runtime/udp_net.h"

namespace zdc::runtime {

enum class ProtocolKind : std::uint8_t {
  kCAbcastL,  ///< C-Abcast over L-Consensus (the paper's Ω stack)
  kCAbcastP,  ///< C-Abcast over P-Consensus (the paper's ◇P stack)
  kWabcast,   ///< WABCast baseline
  kPaxos,     ///< Multi-Paxos sequencer baseline
};

class RuntimeNode {
 public:
  /// Invoked on the node's worker thread for every a-delivered message, in
  /// the total order.
  using DeliverFn = std::function<void(const abcast::AppMessage&)>;

  /// `batching` is applied to the protocol when it supports it (see
  /// abcast::configure_batching). `metrics` registers per-node counters
  /// (a-broadcasts, a-deliveries); `trace` records the node's message events
  /// in the sim trace schema with wall-clock timestamps. Both may be null.
  RuntimeNode(ProcessId self, GroupParams group, Transport& net,
              ProtocolKind kind, HeartbeatFd::Config fd_cfg,
              DeliverFn on_deliver,
              const abcast::BatchingOptions& batching = {},
              obs::MetricsRegistry* metrics = nullptr,
              obs::RuntimeTraceRecorder* trace = nullptr);
  ~RuntimeNode();

  RuntimeNode(const RuntimeNode&) = delete;
  RuntimeNode& operator=(const RuntimeNode&) = delete;

  /// Arms the failure detector. Call after InprocNetwork::start().
  void start();

  /// Thread-safe: marshals the a-broadcast onto the node's worker thread.
  void a_broadcast(std::string payload);

  /// Installs the Channel::kCatchup dispatch hook (recovery state transfer,
  /// see recovery::CatchupService). Like Transport::set_handler, must be
  /// called before the transport starts; the hook then runs on this node's
  /// worker thread. Without a hook, catch-up traffic is dropped.
  void set_catchup_handler(std::function<void(const Delivery&)> fn) {
    on_catchup_ = std::move(fn);
  }

  [[nodiscard]] ProcessId id() const { return self_; }
  [[nodiscard]] const HeartbeatFd& failure_detector() const { return *fd_; }
  /// Only read after the cluster quiesced (worker-thread data).
  [[nodiscard]] const abcast::AbcastMetrics& metrics() const {
    return protocol_->metrics();
  }

 private:
  class Host;

  void handle(const Delivery& d);

  const ProcessId self_;
  Transport& net_;
  DeliverFn on_deliver_;
  std::function<void(const Delivery&)> on_catchup_;
  obs::RuntimeTraceRecorder* trace_;
  std::unique_ptr<Host> host_;
  std::unique_ptr<HeartbeatFd> fd_;
  std::unique_ptr<abcast::AtomicBroadcast> protocol_;
  // Pre-registered handles (null when metrics are off).
  obs::Counter* a_broadcasts_ctr_ = nullptr;
  obs::Counter* a_deliveries_ctr_ = nullptr;
};

/// n replicas over one transport (in-process mailboxes by default, real
/// loopback UDP sockets with kTransportUdp).
class RuntimeCluster {
 public:
  enum class TransportKind : std::uint8_t { kInproc, kUdp };

  struct Config {
    GroupParams group{4, 1};
    TransportKind transport = TransportKind::kInproc;
    InprocNetwork::Config net;  ///< kInproc; .n is overwritten with group.n
    UdpNetwork::Config udp;     ///< kUdp; .n is overwritten with group.n
    ProtocolKind kind = ProtocolKind::kCAbcastL;
    HeartbeatFd::Config fd;
    abcast::BatchingOptions batching;
    /// Optional observability sinks; when set they are propagated into the
    /// transport, failure-detector and node configs. Both must outlive the
    /// cluster.
    obs::MetricsRegistry* metrics = nullptr;
    obs::RuntimeTraceRecorder* trace = nullptr;
    /// Optional per-process stable-storage factory
    /// (RunOptions::storage_factory maps here). When set, the cluster
    /// instantiates one storage per process at construction and keeps it
    /// across crash()/restart — see storage(p)/reopen_storage(p).
    common::StorageFactory storage_factory;

    /// Maps the shared run-options bundle onto a cluster config: group, seed,
    /// batching, metrics and storage_factory carry over.
    /// `opts.net`/`opts.fd`/`opts.trace` are sim-fabric knobs (LanModel,
    /// FdSim, single-threaded TraceRecorder) and are deliberately ignored —
    /// the runtime has a real network, a real heartbeat detector and its own
    /// thread-safe RuntimeTraceRecorder. The mapping is exhaustive by
    /// construction (structured binding over RunOptions): adding a RunOptions
    /// field without deciding its fate here fails to compile.
    static Config from_options(const zdc::RunOptions& opts);
  };

  /// `on_deliver(p, m)` runs on replica p's worker thread.
  RuntimeCluster(Config cfg,
                 std::function<void(ProcessId, const abcast::AppMessage&)>
                     on_deliver);
  ~RuntimeCluster();

  void start();
  void shutdown();

  RuntimeNode& node(ProcessId p) { return *nodes_[p]; }
  Transport& network() { return *net_; }
  void crash(ProcessId p) { net_->crash(p); }

  /// Per-process stable storage, built from Config::storage_factory at
  /// construction (null when no factory is configured). The object survives
  /// crash(p) — stable storage is exactly what a reboot keeps.
  [[nodiscard]] common::StableStorage* storage(ProcessId p) {
    return p < storages_.size() ? storages_[p].get() : nullptr;
  }
  /// Models the kill-9 reboot of p's disk stack: re-invokes the factory for
  /// p (a DurableStableStorage factory over a persistent Env replays its WAL
  /// here) and swaps the slot. The old storage handle is destroyed — callers
  /// must drop references first. Returns the fresh storage (null when no
  /// factory is configured).
  common::StableStorage* reopen_storage(ProcessId p);
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Polls `done` every millisecond until it returns true or `timeout_ms`
  /// elapses (periodic heartbeats keep mailboxes busy forever, so completion
  /// has to be an application-level condition). Returns whether `done` held.
  static bool wait_until(const std::function<bool()>& done, double timeout_ms);

 private:
  std::unique_ptr<Transport> net_;
  std::vector<std::unique_ptr<RuntimeNode>> nodes_;
  common::StorageFactory storage_factory_;
  std::vector<std::unique_ptr<common::StableStorage>> storages_;
};

}  // namespace zdc::runtime
