// Crash-recovery consensus on the threaded runtime, plus the wall-clock
// nemesis driver.
//
// ConsensusRunner runs one recovering-Paxos instance per process over a real
// Transport (InprocNetwork or UdpNetwork): each process gets a heartbeat
// failure detector (Ω via the suspect-set reduction), a StableStorage that
// survives its crashes (in-memory by default, WAL-backed via the storage
// factory), and a protocol object living on its worker thread. crash(p)/restart(p) exercise the full crash-recovery story on real
// threads — the acceptor state reloads from storage, the transport purges the
// dead incarnation's queues, and the restarted proposer re-proposes.
//
// NemesisDriver replays a fault::FaultPlan against a Transport in wall-clock
// time (action times are milliseconds from run()): link actions go straight
// to Transport::links(), crash/restart route through caller hooks so a
// protocol layer (like ConsensusRunner) can rebuild its stack.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stable_storage.h"
#include "common/types.h"
#include "consensus/consensus.h"
#include "fault/fault_plan.h"
#include "runtime/heartbeat_fd.h"
#include "runtime/transport.h"

namespace zdc::runtime {

class ConsensusRunner {
 public:
  /// The transport must outlive the runner; the runner installs all handlers,
  /// so construct it before any other user of the transport's handler slots.
  /// `fd_cfg.metrics` (when set) also receives the runner's own counters
  /// (proposals, decisions, restarts, labeled by process).
  /// `storage_factory` (RunOptions::storage_factory) builds each process's
  /// stable storage; unset = in-memory. The runner owns the storage across
  /// crash/restart cycles — that is what "stable" means here.
  ConsensusRunner(GroupParams group, Transport& net,
                  HeartbeatFd::Config fd_cfg = {},
                  common::StorageFactory storage_factory = {});
  ~ConsensusRunner();

  ConsensusRunner(const ConsensusRunner&) = delete;
  ConsensusRunner& operator=(const ConsensusRunner&) = delete;

  /// Starts the transport and the failure detectors.
  void start();

  /// Thread-safe: marshals the proposal onto p's worker thread. The proposal
  /// is remembered and re-proposed automatically after every restart(p).
  void propose(ProcessId p, const Value& v);

  void crash(ProcessId p);
  /// Rebuilds p's protocol from its surviving stable storage, revives the
  /// transport endpoint, re-arms the failure detector and re-proposes.
  void restart(ProcessId p);

  [[nodiscard]] bool decided(ProcessId p) const;
  [[nodiscard]] Value decision(ProcessId p) const;
  /// True if any two (incarnations of) processes decided different values.
  [[nodiscard]] bool agreement_violated() const;
  /// Polls until every process in `procs` decided or `timeout_ms` elapsed.
  bool wait_decided(const std::vector<ProcessId>& procs,
                    double timeout_ms) const;

  [[nodiscard]] Transport& network() { return net_; }
  [[nodiscard]] common::StableStorage& storage(ProcessId p);

 private:
  struct Node;
  class Host;

  void handle(ProcessId p, const Delivery& d);
  void record_decision(ProcessId p, const Value& v);
  [[nodiscard]] std::unique_ptr<consensus::Consensus> build_protocol(
      ProcessId p);

  const GroupParams group_;
  Transport& net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> conflict_{false};
};

/// Replays a scripted fault plan against a live transport. Blocking: run()
/// sleeps between actions and returns after the last one fired.
class NemesisDriver {
 public:
  /// crash/restart actions invoke the hooks when provided (so the protocol
  /// layer can rebuild its stack), else fall back to the bare transport
  /// calls. Link and pause actions always apply to net.links().
  NemesisDriver(Transport& net, fault::FaultPlan plan,
                std::function<void(ProcessId)> crash_hook = {},
                std::function<void(ProcessId)> restart_hook = {});

  void run();

 private:
  Transport& net_;
  fault::FaultPlan plan_;
  std::function<void(ProcessId)> crash_hook_;
  std::function<void(ProcessId)> restart_hook_;
};

}  // namespace zdc::runtime
