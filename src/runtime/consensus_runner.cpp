#include "runtime/consensus_runner.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "consensus/recovering_paxos.h"

namespace zdc::runtime {

/// Maps the sans-io protocol outputs onto the transport channels. Lives as
/// long as the runner; protocol instances behind it come and go on restart.
class ConsensusRunner::Host final : public consensus::ConsensusHost {
 public:
  Host(ConsensusRunner& runner, ProcessId self)
      : runner_(runner), self_(self) {}

  void send(ProcessId to, std::string bytes) override {
    runner_.net_.send(Channel::kProtocol, self_, to, std::move(bytes));
  }
  void broadcast(std::string bytes) override {
    runner_.net_.broadcast(Channel::kProtocol, self_, std::move(bytes));
  }
  void deliver_decision(const Value& v) override {
    runner_.record_decision(self_, v);
  }
  void w_broadcast(std::uint64_t stage, std::string payload) override {
    runner_.net_.broadcast(Channel::kWab, self_, std::move(payload), stage);
  }

 private:
  ConsensusRunner& runner_;
  const ProcessId self_;
};

struct ConsensusRunner::Node {
  std::unique_ptr<Host> host;
  std::unique_ptr<HeartbeatFd> fd;
  std::unique_ptr<common::StableStorage> storage;  ///< survives crash/restart
  std::unique_ptr<consensus::Consensus> protocol;
  /// False between crash(p) and restart(p). The handler reads with acquire;
  /// restart() publishes the rebuilt protocol with the matching release while
  /// the transport still has p crashed, so the worker can never observe a
  /// half-built instance.
  std::atomic<bool> up{true};
  std::atomic<bool> decided{false};
  std::atomic<bool> has_proposal{false};
  mutable common::Mutex mu;  ///< guards decision + proposal (cross-thread reads)
  Value decision ZDC_GUARDED_BY(mu);
  Value proposal ZDC_GUARDED_BY(mu);
  // Pre-registered handles (null when fd_cfg.metrics is null).
  obs::Counter* proposals_ctr = nullptr;
  obs::Counter* decisions_ctr = nullptr;
  obs::Counter* restarts_ctr = nullptr;
};

ConsensusRunner::ConsensusRunner(GroupParams group, Transport& net,
                                 HeartbeatFd::Config fd_cfg,
                                 common::StorageFactory storage_factory)
    : group_(group), net_(net) {
  ZDC_ASSERT(net.size() == group.n);
  nodes_.reserve(group.n);
  for (ProcessId p = 0; p < group.n; ++p) {
    auto node = std::make_unique<Node>();
    node->host = std::make_unique<Host>(*this, p);
    node->storage = storage_factory
                        ? storage_factory(p)
                        : std::make_unique<common::InMemoryStableStorage>();
    ZDC_ASSERT(node->storage != nullptr);
    node->fd = std::make_unique<HeartbeatFd>(p, net_, fd_cfg, [this, p] {
      Node& n = *nodes_[p];
      if (n.up.load(std::memory_order_acquire)) n.protocol->on_fd_change();
    });
    if (fd_cfg.metrics != nullptr) {
      node->proposals_ctr = &fd_cfg.metrics->counter(
          "zdc_runner_proposals_total", obs::process_label(p));
      node->decisions_ctr = &fd_cfg.metrics->counter(
          "zdc_runner_decisions_total", obs::process_label(p));
      node->restarts_ctr = &fd_cfg.metrics->counter(
          "zdc_runner_restarts_total", obs::process_label(p));
    }
    nodes_.push_back(std::move(node));
  }
  // Protocols after all fds exist: build_protocol dereferences node->fd.
  for (ProcessId p = 0; p < group.n; ++p) {
    nodes_[p]->protocol = build_protocol(p);
    net_.set_handler(p, [this, p](const Delivery& d) { handle(p, d); });
  }
}

ConsensusRunner::~ConsensusRunner() { net_.shutdown(); }

std::unique_ptr<consensus::Consensus> ConsensusRunner::build_protocol(
    ProcessId p) {
  Node& node = *nodes_[p];
  return std::make_unique<consensus::RecoveringPaxosConsensus>(
      p, group_, *node.host, node.fd->omega(), *node.storage);
}

void ConsensusRunner::start() {
  net_.start();
  for (auto& node : nodes_) node->fd->start();
}

void ConsensusRunner::handle(ProcessId p, const Delivery& d) {
  Node& node = *nodes_[p];
  if (!node.up.load(std::memory_order_acquire)) return;
  switch (d.channel) {
    case Channel::kProtocol:
      node.protocol->on_message(d.from, d.bytes);
      break;
    case Channel::kHeartbeat:
      node.fd->on_heartbeat(d.from);
      break;
    case Channel::kWab:
      node.protocol->on_w_deliver(d.wab_instance, d.from, d.bytes);
      break;
    case Channel::kCatchup:
      // Single-shot consensus has no recovery service; nothing to feed.
      break;
  }
}

void ConsensusRunner::propose(ProcessId p, const Value& v) {
  Node& node = *nodes_[p];
  {
    common::MutexLock lock(node.mu);
    node.proposal = v;
  }
  node.has_proposal.store(true, std::memory_order_release);
  if (node.proposals_ctr != nullptr) node.proposals_ctr->inc();
  net_.schedule(p, 0.0, [this, p] {
    Node& n = *nodes_[p];
    if (!n.up.load(std::memory_order_acquire)) return;
    Value value;
    {
      common::MutexLock lock(n.mu);
      value = n.proposal;
    }
    n.protocol->propose(value);
  });
}

void ConsensusRunner::crash(ProcessId p) {
  nodes_[p]->up.store(false, std::memory_order_release);
  net_.crash(p);
}

void ConsensusRunner::restart(ProcessId p) {
  if (!net_.crashed(p)) return;
  net_.restart(p);
  // The rebuild must run on p's own worker: a handler that slipped past the
  // `up` gate just before crash() may still be mid-execution on the old
  // protocol object, and the worker thread is the only place serialized with
  // it. Until the timer fires, `up` stays false and fresh deliveries are
  // dropped — indistinguishable from arriving during the reboot itself.
  net_.schedule(p, 0.0, [this, p] {
    Node& n = *nodes_[p];
    n.protocol = build_protocol(p);  // reloads write-ahead acceptor state
    if (n.restarts_ctr != nullptr) n.restarts_ctr->inc();
    n.up.store(true, std::memory_order_release);
    n.fd->restart_on_worker();
    ZDC_LOG(kDebug, "consensus-runner")
        << "p" << p << " rebuilt; re-proposing="
        << n.has_proposal.load(std::memory_order_acquire);
    if (n.has_proposal.load(std::memory_order_acquire)) {
      Value value;
      {
        common::MutexLock lock(n.mu);
        value = n.proposal;
      }
      n.protocol->propose(value);
    }
  });
}

void ConsensusRunner::record_decision(ProcessId p, const Value& v) {
  Node& node = *nodes_[p];
  {
    common::MutexLock lock(node.mu);
    node.decision = v;
  }
  node.decided.store(true, std::memory_order_release);
  if (node.decisions_ctr != nullptr) node.decisions_ctr->inc();
  // Agreement check across processes (and across incarnations: a process that
  // decided, crashed, restarted and decided again goes through here twice).
  Value first;
  bool have = false;
  for (const auto& other : nodes_) {
    if (!other->decided.load(std::memory_order_acquire)) continue;
    common::MutexLock lock(other->mu);
    if (!have) {
      first = other->decision;
      have = true;
    } else if (other->decision != first) {
      conflict_.store(true, std::memory_order_release);
      ZDC_LOG(kError, "consensus-runner")
          << "agreement violation: '" << first << "' vs '" << other->decision
          << "'";
    }
  }
}

bool ConsensusRunner::decided(ProcessId p) const {
  return nodes_[p]->decided.load(std::memory_order_acquire);
}

Value ConsensusRunner::decision(ProcessId p) const {
  const Node& node = *nodes_[p];
  ZDC_ASSERT(node.decided.load(std::memory_order_acquire));
  common::MutexLock lock(node.mu);
  return node.decision;
}

bool ConsensusRunner::agreement_violated() const {
  return conflict_.load(std::memory_order_acquire);
}

bool ConsensusRunner::wait_decided(const std::vector<ProcessId>& procs,
                                   double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  for (;;) {
    bool all = true;
    for (ProcessId p : procs) {
      if (!decided(p)) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

common::StableStorage& ConsensusRunner::storage(ProcessId p) {
  return *nodes_[p]->storage;
}

NemesisDriver::NemesisDriver(Transport& net, fault::FaultPlan plan,
                             std::function<void(ProcessId)> crash_hook,
                             std::function<void(ProcessId)> restart_hook)
    : net_(net),
      plan_(std::move(plan)),
      crash_hook_(std::move(crash_hook)),
      restart_hook_(std::move(restart_hook)) {
  plan_.normalize();
}

void NemesisDriver::run() {
  const auto t0 = std::chrono::steady_clock::now();
  for (const fault::FaultAction& a : plan_.actions) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(a.time)));
    ZDC_LOG(kDebug, "nemesis") << fault::to_string(a);
    switch (a.kind) {
      case fault::FaultKind::kCrash:
        if (crash_hook_) {
          crash_hook_(a.p);
        } else {
          net_.crash(a.p);
        }
        break;
      case fault::FaultKind::kRestart:
        if (restart_hook_) {
          restart_hook_(a.p);
        } else {
          net_.restart(a.p);
        }
        break;
      default:
        fault::apply_to_policy(a, net_.links());
        break;
    }
  }
}

}  // namespace zdc::runtime
