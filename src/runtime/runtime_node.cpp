#include "runtime/runtime_node.h"

#include <chrono>
#include <thread>
#include <utility>

#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"
#include "common/assert.h"

namespace zdc::runtime {

class RuntimeNode::Host final : public abcast::AbcastHost {
 public:
  Host(RuntimeNode& node) : node_(node) {}

  void send(ProcessId to, std::string bytes) override {
    node_.net_.send(Channel::kProtocol, node_.self_, to, std::move(bytes));
  }
  void broadcast(std::string bytes) override {
    node_.net_.broadcast(Channel::kProtocol, node_.self_, std::move(bytes));
  }
  void w_broadcast(InstanceId k, std::string payload) override {
    node_.net_.broadcast(Channel::kWab, node_.self_, std::move(payload), k);
  }
  void a_deliver(const abcast::AppMessage& m) override {
    if (node_.on_deliver_) node_.on_deliver_(m);
  }

 private:
  RuntimeNode& node_;
};

RuntimeNode::RuntimeNode(ProcessId self, GroupParams group, Transport& net,
                         ProtocolKind kind, HeartbeatFd::Config fd_cfg,
                         DeliverFn on_deliver)
    : self_(self), net_(net), on_deliver_(std::move(on_deliver)) {
  host_ = std::make_unique<Host>(*this);
  fd_ = std::make_unique<HeartbeatFd>(self, net, fd_cfg, [this] {
    if (protocol_ != nullptr) protocol_->on_fd_change();
  });

  switch (kind) {
    case ProtocolKind::kCAbcastL:
      protocol_ = abcast::make_c_abcast_l(self, group, *host_, fd_->omega());
      break;
    case ProtocolKind::kCAbcastP:
      protocol_ = abcast::make_c_abcast_p(self, group, *host_, *fd_);
      break;
    case ProtocolKind::kWabcast:
      protocol_ = abcast::make_wabcast(self, group, *host_);
      break;
    case ProtocolKind::kPaxos:
      protocol_ = std::make_unique<abcast::PaxosAbcast>(self, group, *host_,
                                                        fd_->omega());
      break;
  }

  net_.set_handler(self, [this](const Delivery& d) { handle(d); });
}

RuntimeNode::~RuntimeNode() = default;

void RuntimeNode::start() { fd_->start(); }

void RuntimeNode::a_broadcast(std::string payload) {
  // Marshal onto the worker thread: protocol objects are single-threaded.
  net_.schedule(self_, 0.0, [this, payload = std::move(payload)]() mutable {
    protocol_->a_broadcast(std::move(payload));
  });
}

void RuntimeNode::handle(const Delivery& d) {
  switch (d.channel) {
    case Channel::kProtocol:
      protocol_->on_message(d.from, d.bytes);
      break;
    case Channel::kHeartbeat:
      fd_->on_heartbeat(d.from);
      break;
    case Channel::kWab:
      protocol_->on_w_deliver(d.wab_instance, d.from, d.bytes);
      break;
  }
}

RuntimeCluster::RuntimeCluster(
    Config cfg,
    std::function<void(ProcessId, const abcast::AppMessage&)> on_deliver) {
  if (cfg.transport == TransportKind::kUdp) {
    UdpNetwork::Config udp_cfg = cfg.udp;
    udp_cfg.n = cfg.group.n;
    net_ = std::make_unique<UdpNetwork>(udp_cfg);
  } else {
    InprocNetwork::Config net_cfg = cfg.net;
    net_cfg.n = cfg.group.n;
    net_ = std::make_unique<InprocNetwork>(net_cfg);
  }
  nodes_.reserve(cfg.group.n);
  for (ProcessId p = 0; p < cfg.group.n; ++p) {
    nodes_.push_back(std::make_unique<RuntimeNode>(
        p, cfg.group, *net_, cfg.kind, cfg.fd,
        [on_deliver, p](const abcast::AppMessage& m) {
          if (on_deliver) on_deliver(p, m);
        }));
  }
}

RuntimeCluster::~RuntimeCluster() { shutdown(); }

void RuntimeCluster::start() {
  net_->start();
  for (auto& node : nodes_) node->start();
}

void RuntimeCluster::shutdown() {
  if (net_ != nullptr) net_->shutdown();
}

bool RuntimeCluster::wait_until(const std::function<bool()>& done,
                                double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

}  // namespace zdc::runtime
