#include "runtime/runtime_node.h"

#include <chrono>
#include <thread>
#include <utility>

#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"
#include "common/assert.h"
#include "common/codec.h"
#include "sim/trace.h"

namespace zdc::runtime {

class RuntimeNode::Host final : public abcast::AbcastHost {
 public:
  Host(RuntimeNode& node) : node_(node) {}

  // Trace events for sends are recorded BEFORE the transport push: the
  // recorder's wall-clock stamp then happens-before the matching delivery
  // stamp, which keeps the recorded trace causally consistent.
  void send(ProcessId to, std::string bytes) override {
    if (node_.trace_ != nullptr) {
      node_.trace_->record(sim::TraceKind::kSend, node_.self_, to);
    }
    node_.net_.send(Channel::kProtocol, node_.self_, to, std::move(bytes));
  }
  void broadcast(std::string bytes) override {
    if (node_.trace_ != nullptr) {
      for (ProcessId to = 0; to < node_.net_.size(); ++to) {
        node_.trace_->record(sim::TraceKind::kSend, node_.self_, to);
      }
    }
    node_.net_.broadcast(Channel::kProtocol, node_.self_, std::move(bytes));
  }
  void w_broadcast(InstanceId k, std::string payload) override {
    if (node_.trace_ != nullptr) {
      node_.trace_->record(sim::TraceKind::kWabSend, node_.self_, kNoProcess,
                           "k=" + std::to_string(k));
    }
    node_.net_.broadcast(Channel::kWab, node_.self_, std::move(payload), k);
  }
  void a_deliver(const abcast::AppMessage& m) override {
    if (node_.a_deliveries_ctr_ != nullptr) node_.a_deliveries_ctr_->inc();
    if (node_.trace_ != nullptr) {
      node_.trace_->record(sim::TraceKind::kDecide, node_.self_, m.id.sender);
    }
    if (node_.on_deliver_) node_.on_deliver_(m);
  }

 private:
  RuntimeNode& node_;
};

RuntimeNode::RuntimeNode(ProcessId self, GroupParams group, Transport& net,
                         ProtocolKind kind, HeartbeatFd::Config fd_cfg,
                         DeliverFn on_deliver,
                         const abcast::BatchingOptions& batching,
                         obs::MetricsRegistry* metrics,
                         obs::RuntimeTraceRecorder* trace)
    : self_(self), net_(net), on_deliver_(std::move(on_deliver)),
      trace_(trace) {
  if (metrics != nullptr) {
    a_broadcasts_ctr_ = &metrics->counter("zdc_node_a_broadcasts_total",
                                          obs::process_label(self));
    a_deliveries_ctr_ = &metrics->counter("zdc_node_a_deliveries_total",
                                          obs::process_label(self));
  }
  host_ = std::make_unique<Host>(*this);
  fd_ = std::make_unique<HeartbeatFd>(self, net, fd_cfg, [this] {
    if (protocol_ != nullptr) protocol_->on_fd_change();
  });

  switch (kind) {
    case ProtocolKind::kCAbcastL:
      protocol_ = abcast::make_c_abcast_l(self, group, *host_, fd_->omega());
      break;
    case ProtocolKind::kCAbcastP:
      protocol_ = abcast::make_c_abcast_p(self, group, *host_, *fd_);
      break;
    case ProtocolKind::kWabcast:
      protocol_ = abcast::make_wabcast(self, group, *host_);
      break;
    case ProtocolKind::kPaxos:
      protocol_ = std::make_unique<abcast::PaxosAbcast>(self, group, *host_,
                                                        fd_->omega());
      break;
  }
  abcast::configure_batching(*protocol_, batching);

  net_.set_handler(self, [this](const Delivery& d) { handle(d); });
}

RuntimeNode::~RuntimeNode() = default;

void RuntimeNode::start() { fd_->start(); }

void RuntimeNode::a_broadcast(std::string payload) {
  if (a_broadcasts_ctr_ != nullptr) a_broadcasts_ctr_->inc();
  if (trace_ != nullptr) {
    trace_->record(sim::TraceKind::kPropose, self_);
  }
  // Marshal onto the worker thread: protocol objects are single-threaded.
  net_.schedule(self_, 0.0, [this, payload = std::move(payload)]() mutable {
    protocol_->a_broadcast(std::move(payload));
  });
}

void RuntimeNode::handle(const Delivery& d) {
  switch (d.channel) {
    case Channel::kProtocol:
      if (trace_ != nullptr) {
        trace_->record(sim::TraceKind::kDeliver, self_, d.from);
      }
      protocol_->on_message(d.from, d.bytes);
      break;
    case Channel::kHeartbeat: {
      // Heartbeats are untraced: they would dwarf protocol traffic in any
      // spacetime rendering without adding causal information. The payload
      // is the sender's Ω estimate (lease endorsement); an empty or
      // malformed payload still counts for liveness, never for leases.
      common::Decoder dec(d.bytes);
      const ProcessId endorsed = dec.get_u32();
      fd_->on_heartbeat(d.from, dec.done() ? endorsed : kNoProcess);
      break;
    }
    case Channel::kWab:
      if (trace_ != nullptr) {
        trace_->record(sim::TraceKind::kWabDeliver, self_, d.from,
                       "k=" + std::to_string(d.wab_instance));
      }
      protocol_->on_w_deliver(d.wab_instance, d.from, d.bytes);
      break;
    case Channel::kCatchup:
      // Recovery traffic bypasses the protocol: the recovery layer (e.g.
      // recovery::ReplicaGroup) installs this hook per node. Untraced, like
      // heartbeats: state transfer adds no causal information to the
      // protocol's spacetime rendering.
      if (on_catchup_) on_catchup_(d);
      break;
  }
}

RuntimeCluster::Config RuntimeCluster::Config::from_options(
    const zdc::RunOptions& opts) {
  // Structured binding = compile-time exhaustive mapping: every RunOptions
  // field must be named here, so adding one without deciding its runtime
  // fate is a build error instead of a silent drop (which is exactly how
  // storage_factory got lost by the old field-by-field copy).
  const auto& [group, net, fd, seed, batching, metrics, trace,
               storage_factory, service] = opts;
  Config cfg;
  cfg.group = group;
  cfg.net.seed = seed;
  cfg.udp.seed = seed;
  cfg.batching = batching;
  cfg.metrics = metrics;
  cfg.storage_factory = storage_factory;
  // Sim-fabric knobs with no runtime counterpart (see the header comment).
  static_cast<void>(net);
  static_cast<void>(fd);
  static_cast<void>(trace);
  // Service-layer knobs are mostly consumed one level up (rsm::ServiceGroup
  // wraps the cluster), but the lease length must reach the failure
  // detector: endorsement freshness/streaks are measured against the SAME
  // bound the service serves reads under.
  cfg.fd.endorsement_stale_ms = service.lease_ms;
  return cfg;
}

RuntimeCluster::RuntimeCluster(
    Config cfg,
    std::function<void(ProcessId, const abcast::AppMessage&)> on_deliver) {
  cfg.fd.metrics = cfg.metrics;  // one sink feeds every layer
  if (cfg.transport == TransportKind::kUdp) {
    UdpNetwork::Config udp_cfg = cfg.udp;
    udp_cfg.n = cfg.group.n;
    udp_cfg.metrics = cfg.metrics;
    net_ = std::make_unique<UdpNetwork>(udp_cfg);
  } else {
    InprocNetwork::Config net_cfg = cfg.net;
    net_cfg.n = cfg.group.n;
    net_cfg.metrics = cfg.metrics;
    net_ = std::make_unique<InprocNetwork>(net_cfg);
  }
  storage_factory_ = cfg.storage_factory;
  if (storage_factory_) {
    storages_.reserve(cfg.group.n);
    for (ProcessId p = 0; p < cfg.group.n; ++p) {
      storages_.push_back(storage_factory_(p));
    }
  }
  nodes_.reserve(cfg.group.n);
  for (ProcessId p = 0; p < cfg.group.n; ++p) {
    nodes_.push_back(std::make_unique<RuntimeNode>(
        p, cfg.group, *net_, cfg.kind, cfg.fd,
        [on_deliver, p](const abcast::AppMessage& m) {
          if (on_deliver) on_deliver(p, m);
        },
        cfg.batching, cfg.metrics, cfg.trace));
  }
}

common::StableStorage* RuntimeCluster::reopen_storage(ProcessId p) {
  if (!storage_factory_ || p >= storages_.size()) return nullptr;
  storages_[p] = storage_factory_(p);
  return storages_[p].get();
}

RuntimeCluster::~RuntimeCluster() { shutdown(); }

void RuntimeCluster::start() {
  net_->start();
  for (auto& node : nodes_) node->start();
}

void RuntimeCluster::shutdown() {
  if (net_ != nullptr) net_->shutdown();
}

bool RuntimeCluster::wait_until(const std::function<bool()>& done,
                                double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

}  // namespace zdc::runtime
