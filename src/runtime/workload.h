// Workload driver for the threaded runtime: the real-concurrency counterpart
// of sim::run_abcast. A Poisson arrival thread a-broadcasts keyed payloads
// through a RuntimeCluster (in-process mailboxes or real UDP sockets);
// deliveries are timestamped and checked for total order — used by
// bench_runtime_validation to confirm that the protocol ordering the
// simulator predicts also holds under genuine thread/socket timing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "runtime/runtime_node.h"

namespace zdc::runtime {

struct RuntimeWorkloadConfig {
  RuntimeCluster::Config cluster;
  double throughput_per_s = 500.0;
  std::uint32_t message_count = 200;
  std::uint32_t payload_bytes = 32;
  /// Fraction of earliest messages excluded from latency statistics.
  double warmup_fraction = 0.1;
  double timeout_ms = 60'000.0;
  std::uint64_t seed = 1;
  /// When > 0 and `cluster.metrics` is set, a snapshot thread invokes
  /// `on_snapshot` with the registry's JSON export every period (plus one
  /// final snapshot before run_runtime_workload returns).
  double snapshot_period_ms = 0.0;
  std::function<void(const std::string& json)> on_snapshot;
};

struct RuntimeWorkloadResult {
  /// Wall-clock latency from submission to the first a-delivery anywhere.
  common::Sampler latency_ms;
  /// Per-delivery latency across ALL replicas: accumulated as one OnlineStats
  /// per replica worker thread and combined after the join with
  /// OnlineStats::merge (parallel Welford).
  common::OnlineStats replica_latency_ms;
  bool total_order_ok = true;
  bool complete = false;  ///< every replica delivered every message
  std::uint64_t delivered_total = 0;
  double duration_ms = 0.0;
};

RuntimeWorkloadResult run_runtime_workload(const RuntimeWorkloadConfig& cfg);

}  // namespace zdc::runtime
