// Abstract transport of the threaded runtime.
//
// Two implementations ship:
//   * InprocNetwork — mailbox threads with injected delays (fast, hermetic);
//   * UdpNetwork    — real loopback UDP sockets with a go-back-style ARQ for
//                     the reliable channel (the paper's TCP) and raw
//                     datagrams for heartbeats and the ordering oracle.
//
// Contract (both implementations):
//   * handlers and scheduled callbacks of process p run on p's dedicated
//     thread — protocol objects need no locking;
//   * kProtocol and kCatchup are reliable between correct processes (no
//     loss, no duplication); kHeartbeat and kWab are best-effort;
//   * broadcast() delivers to every process including the sender;
//   * after crash(p), p neither sends nor receives.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "fault/link_policy.h"

namespace zdc::runtime {

enum class Channel : std::uint8_t {
  kProtocol = 0,   ///< consensus/abcast traffic (reliable)
  kHeartbeat = 1,  ///< failure-detector heartbeats (best-effort)
  kWab = 2,        ///< WAB ordering-oracle datagrams (best-effort)
  kCatchup = 3,    ///< recovery state transfer (reliable; src/recovery)
};

/// Reliable channels get TCP semantics: no loss or duplication between
/// correct processes, blocked links stall them instead of dropping, and the
/// UDP transport runs them through its ARQ. Best-effort channels are raw
/// datagrams.
[[nodiscard]] constexpr bool is_reliable(Channel channel) {
  return channel == Channel::kProtocol || channel == Channel::kCatchup;
}

struct Delivery {
  Channel channel = Channel::kProtocol;
  ProcessId from = 0;
  std::string bytes;
  InstanceId wab_instance = 0;  ///< meaningful on kWab only
};

class Transport {
 public:
  using Handler = std::function<void(const Delivery&)>;

  virtual ~Transport() = default;

  /// Must be called for every process before start().
  virtual void set_handler(ProcessId p, Handler handler) = 0;
  virtual void start() = 0;
  /// Stops all workers and discards undelivered traffic. Idempotent.
  virtual void shutdown() = 0;

  virtual void send(Channel channel, ProcessId from, ProcessId to,
                    std::string bytes, InstanceId wab_instance = 0) = 0;
  /// Delivers to all n processes including the sender.
  virtual void broadcast(Channel channel, ProcessId from, std::string bytes,
                         InstanceId wab_instance = 0) = 0;

  /// Runs `fn` on process p's worker thread after `delay_ms`.
  virtual void schedule(ProcessId p, double delay_ms,
                        std::function<void()> fn) = 0;

  /// Simulates a crash: p stops sending and receiving until restart(p).
  virtual void crash(ProcessId p) = 0;
  [[nodiscard]] virtual bool crashed(ProcessId p) const = 0;

  /// Crash-recovery: brings a crashed p back up with an empty inbox — traffic
  /// queued toward the dead incarnation is discarded (a reboot keeps nothing
  /// but stable storage), while sequence spaces stay monotonic so peers'
  /// dedupe state remains valid. The handler installed before start() stays;
  /// the caller is responsible for rebuilding the protocol stack behind it
  /// (see ConsensusRunner). No-op if p is not crashed.
  virtual void restart(ProcessId p) = 0;

  /// The nemesis fault table, consulted on every send/delivery:
  ///   * blocked links stall kProtocol traffic until healed (TCP semantics —
  ///     no loss, arbitrary delay) and silently eat kHeartbeat/kWab;
  ///   * drop_prob loses best-effort datagrams outright and costs reliable
  ///     traffic retransmission delay;
  ///   * paused processes stop executing handlers and timers (SIGSTOP
  ///     semantics: a slow process, not a dead one) until resumed.
  /// Mutate through this reference at any time; thread-safe.
  [[nodiscard]] virtual fault::LinkPolicy& links() = 0;

  [[nodiscard]] virtual std::uint32_t size() const = 0;
};

}  // namespace zdc::runtime
