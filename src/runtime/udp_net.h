// Real-socket transport: every process owns a loopback UDP socket and a
// receive thread. The reliable kProtocol channel is built from raw datagrams
// with a sequence/ack/retransmit ARQ (this is the hand-rolled equivalent of
// the asio/TCP boilerplate the paper's middleware used); kHeartbeat and kWab
// ride raw datagrams — genuinely best-effort, just like the paper's UDP
// oracle.
//
// Design:
//   * one socket + one thread per process; handlers, timers and ARQ
//     retransmissions all run on that thread (single-writer protocols);
//   * wire format: [type u8] then
//       data: [channel u8][from u32][seq u64][wab u64][payload...]
//       ack:  [from u32][seq u64]
//   * reliable sends carry a per-(sender, receiver) sequence number, are
//     acked by the receiver and retransmitted until acked; receivers dedupe
//     with a watermark + out-of-order set, delivering in arrival order
//     (reliable ≠ FIFO — matching the system model's channels);
//   * an optional artificial drop probability exercises the ARQ in tests;
//   * crash(p) closes the loop: p stops sending/receiving and peers purge
//     their retransmission state towards p.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "runtime/transport.h"

// Locking discipline (checked by -Wthread-safety, see Endpoint in the .cpp):
// each Endpoint owns one common::Mutex guarding its ARQ/dedupe/timer state;
// senders on any thread and the endpoint's recv thread take it briefly and
// never call out while holding it.

namespace zdc::runtime {

class UdpNetwork final : public Transport {
 public:
  struct Config {
    std::uint32_t n = 0;
    std::uint64_t seed = 1;
    /// Initial ARQ retransmission period for unacked reliable datagrams;
    /// doubles per retry (exponential backoff) up to retransmit_cap_ms, so a
    /// long partition does not keep hammering a dead link at full rate.
    double retransmit_interval_ms = 15.0;
    double retransmit_cap_ms = 240.0;
    /// Artificial inbound drop probability on every datagram (ARQ stress).
    double drop_prob = 0.0;
    /// Optional metrics sink (datagrams sent, retransmissions, drops,
    /// unacked-queue depth, labeled by process). nullptr = metrics off.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit UdpNetwork(Config cfg);
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  // Transport:
  void set_handler(ProcessId p, Handler handler) override;
  void start() override;
  void shutdown() override;
  void send(Channel channel, ProcessId from, ProcessId to, std::string bytes,
            InstanceId wab_instance = 0) override;
  void broadcast(Channel channel, ProcessId from, std::string bytes,
                 InstanceId wab_instance = 0) override;
  void schedule(ProcessId p, double delay_ms, std::function<void()> fn) override;
  void crash(ProcessId p) override;
  [[nodiscard]] bool crashed(ProcessId p) const override;
  void restart(ProcessId p) override;
  [[nodiscard]] fault::LinkPolicy& links() override { return links_; }
  [[nodiscard]] std::uint32_t size() const override { return cfg_.n; }

  /// The UDP port process p is bound to (tests / diagnostics).
  [[nodiscard]] std::uint16_t port(ProcessId p) const;
  /// Total reliable-channel retransmissions (diagnostics).
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint;

  void recv_loop(ProcessId p);
  void raw_send(ProcessId from, ProcessId to, const std::string& datagram);
  void raw_send_now(ProcessId from, ProcessId to, const std::string& datagram);
  void handle_datagram(ProcessId p, const char* data, std::size_t len);
  void run_due_work(ProcessId p);

  Config cfg_;
  fault::LinkPolicy links_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> retransmissions_{0};
};

}  // namespace zdc::runtime
