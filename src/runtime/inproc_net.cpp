#include "runtime/inproc_net.h"

#include <chrono>
#include <mutex>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "fault/corrupt.h"

namespace zdc::runtime {

using Clock = std::chrono::steady_clock;

struct InprocNetwork::Item {
  Clock::time_point due;
  std::uint64_t seq = 0;
  bool is_timer = false;
  Delivery delivery;
  std::function<void()> timer_fn;
};

struct InprocNetwork::Mailbox {
  explicit Mailbox(std::uint64_t seed) : rng(seed) {}

  struct Later {
    bool operator()(const std::shared_ptr<Item>& a,
                    const std::shared_ptr<Item>& b) const {
      if (a->due != b->due) return a->due > b->due;
      return a->seq > b->seq;
    }
  };

  common::Mutex mu;
  std::condition_variable cv;
  std::priority_queue<std::shared_ptr<Item>, std::vector<std::shared_ptr<Item>>,
                      Later>
      queue ZDC_GUARDED_BY(mu);
  common::Rng rng ZDC_GUARDED_BY(mu);
  std::uint64_t next_seq ZDC_GUARDED_BY(mu) = 0;
  bool busy ZDC_GUARDED_BY(mu) = false;  // worker is executing a handler

  // Pre-registered metric handles, labeled by this (receiving) mailbox's
  // process; null when metrics are off. The metrics themselves are atomics,
  // so updating them under mu is incidental, not required.
  obs::Counter* enqueued_ctr = nullptr;
  obs::Counter* dropped_ctr = nullptr;
  obs::Gauge* depth_gauge = nullptr;

  /// Injected delay for one inbound message (this mailbox's rng).
  double sample_delay(const Config& cfg, Channel channel) ZDC_REQUIRES(mu) {
    double delay = rng.uniform(cfg.min_delay_ms, cfg.max_delay_ms);
    if (channel == Channel::kWab) {
      delay += rng.exponential(cfg.wab_jitter_mean_ms);
    }
    return delay;
  }
};

InprocNetwork::InprocNetwork(Config cfg) : cfg_(cfg), links_(cfg.n) {
  ZDC_ASSERT(cfg.n > 0);
  common::Rng seeder(cfg.seed);
  mailboxes_.reserve(cfg.n);
  crashed_.reserve(cfg.n);
  for (std::uint32_t p = 0; p < cfg.n; ++p) {
    mailboxes_.push_back(std::make_unique<Mailbox>(seeder.next_u64()));
    crashed_.push_back(std::make_unique<std::atomic<bool>>(false));
    if (cfg.metrics != nullptr) {
      Mailbox& box = *mailboxes_.back();
      box.enqueued_ctr = &cfg.metrics->counter(
          "zdc_inproc_messages_total", obs::process_label(p));
      box.dropped_ctr = &cfg.metrics->counter("zdc_inproc_dropped_total",
                                              obs::process_label(p));
      box.depth_gauge = &cfg.metrics->gauge("zdc_inproc_queue_depth",
                                            obs::process_label(p));
    }
  }
  handlers_.resize(cfg.n);
}

InprocNetwork::~InprocNetwork() { shutdown(); }

void InprocNetwork::set_handler(ProcessId p, Handler handler) {
  ZDC_ASSERT(p < cfg_.n);
  ZDC_ASSERT_MSG(!running_.load(), "handlers must be set before start()");
  handlers_[p] = std::move(handler);
}

void InprocNetwork::start() {
  ZDC_ASSERT(!running_.exchange(true));
  workers_.reserve(cfg_.n);
  for (std::uint32_t p = 0; p < cfg_.n; ++p) {
    workers_.emplace_back([this, p] { worker_loop(p); });
  }
}

void InprocNetwork::shutdown() {
  if (!running_.load()) return;
  stopping_.store(true);
  for (auto& box : mailboxes_) {
    common::MutexLock lock(box->mu);
    box->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  running_.store(false);
}

void InprocNetwork::push(ProcessId to, Item item) {
  Mailbox& box = *mailboxes_[to];
  {
    common::MutexLock lock(box.mu);
    item.seq = box.next_seq++;
    if (!item.is_timer) {
      // Sample injected delay with the receiver's RNG (deterministic given
      // arrival order is not required here — this is the concurrent runtime).
      if (item.delivery.channel == Channel::kWab &&
          cfg_.wab_loss_prob > 0.0 && box.rng.chance(cfg_.wab_loss_prob)) {
        if (box.dropped_ctr != nullptr) box.dropped_ctr->inc();
        return;  // best-effort datagram lost
      }
      double delay = box.sample_delay(cfg_, item.delivery.channel);
      const fault::LinkState link = links_.link(item.delivery.from, to);
      if (!link.clean()) {
        if (!is_reliable(item.delivery.channel) &&
            (link.blocked ||
             (link.drop_prob > 0.0 && box.rng.chance(link.drop_prob)))) {
          if (box.dropped_ctr != nullptr) box.dropped_ctr->inc();
          return;  // best-effort traffic on a faulty link is simply lost
        }
        delay += link.extra_delay_ms;
        if (is_reliable(item.delivery.channel) &&
            link.drop_prob > 0.0 && link.drop_prob < 1.0) {
          // No datagram level here, so loss surfaces as retransmission
          // delay: one modeled RTO per lost attempt, geometric count.
          while (box.rng.chance(link.drop_prob)) delay += 1.0;
        }
        // A *blocked* reliable message still enters the queue; the worker
        // re-parks it until the link heals (TCP stalls, it does not lose).
      }
      item.due = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double, std::milli>(
                                        delay));
    }
    box.queue.push(std::make_shared<Item>(std::move(item)));
    if (box.enqueued_ctr != nullptr) {
      box.enqueued_ctr->inc();
      box.depth_gauge->set(static_cast<double>(box.queue.size()));
    }
  }
  box.cv.notify_one();
}

void InprocNetwork::deliver_corrupt(Channel channel, ProcessId from,
                                    ProcessId to, const std::string& bytes,
                                    InstanceId wab_instance,
                                    const fault::CorruptSpec& spec) {
  // Surface-then-retransmit: the receiver sees the corrupted copy AND the
  // clean original (TCP's checksummed retransmission eventually carries the
  // real bytes through), so corruption costs work/latency, never liveness.
  Item item;
  item.delivery = Delivery{channel, from,
                           fault::bit_flip_copy(bytes, spec.byte, spec.bit),
                           wab_instance};
  push(to, std::move(item));
}

void InprocNetwork::send(Channel channel, ProcessId from, ProcessId to,
                         std::string bytes, InstanceId wab_instance) {
  ZDC_ASSERT(from < cfg_.n && to < cfg_.n);
  if (crashed(from) || crashed(to)) return;
  fault::CorruptSpec spec;
  if (is_reliable(channel) && links_.consume_corruption(from, to, &spec)) {
    deliver_corrupt(channel, from, to, bytes, wab_instance, spec);
  }
  Item item;
  item.delivery = Delivery{channel, from, std::move(bytes), wab_instance};
  push(to, std::move(item));
}

void InprocNetwork::broadcast(Channel channel, ProcessId from,
                              std::string bytes, InstanceId wab_instance) {
  ZDC_ASSERT(from < cfg_.n);
  if (crashed(from)) return;
  // Equivocation (duplicate-divergent-send): this broadcast also carries a
  // divergent duplicate to every remote receiver, each copy flipped in a
  // different bit so no two receivers see the same corrupted frame.
  const bool equivocating =
      is_reliable(channel) && links_.consume_equivocation(from);
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    if (crashed(to)) continue;
    fault::CorruptSpec spec;
    if (is_reliable(channel) && links_.consume_corruption(from, to, &spec)) {
      deliver_corrupt(channel, from, to, bytes, wab_instance, spec);
    }
    if (equivocating && to != from) {
      deliver_corrupt(channel, from, to, bytes, wab_instance,
                      fault::CorruptSpec{fault::kMiddleByte, to % 8u});
    }
    Item item;
    item.delivery = Delivery{channel, from, bytes, wab_instance};
    push(to, std::move(item));
  }
}

void InprocNetwork::schedule(ProcessId p, double delay_ms,
                             std::function<void()> fn) {
  ZDC_ASSERT(p < cfg_.n);
  if (crashed(p)) return;
  Item item;
  item.is_timer = true;
  item.timer_fn = std::move(fn);
  item.due = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    delay_ms));
  push(p, std::move(item));
}

void InprocNetwork::crash(ProcessId p) {
  ZDC_ASSERT(p < cfg_.n);
  crashed_[p]->store(true);
  mailboxes_[p]->cv.notify_all();
}

bool InprocNetwork::crashed(ProcessId p) const {
  return crashed_[p]->load();
}

void InprocNetwork::restart(ProcessId p) {
  ZDC_ASSERT(p < cfg_.n);
  if (!crashed(p)) return;
  Mailbox& box = *mailboxes_[p];
  {
    common::MutexLock lock(box.mu);
    // The dead incarnation's inbox (messages *and* timers) is gone — a
    // reboot keeps nothing but stable storage. next_seq keeps counting so
    // item ordering stays monotonic across incarnations.
    while (!box.queue.empty()) box.queue.pop();
    // The queue-depth gauge must follow the wipe, or metrics report the dead
    // incarnation's backlog until the next enqueue (udp_net already does
    // this on restart).
    if (box.depth_gauge != nullptr) box.depth_gauge->set(0.0);
  }
  crashed_[p]->store(false);
  box.cv.notify_all();
}

void InprocNetwork::worker_loop(ProcessId p) {
  Mailbox& box = *mailboxes_[p];
  for (;;) {
    std::shared_ptr<Item> item;
    {
      common::MutexLock lock(box.mu);
      for (;;) {
        if (stopping_.load()) return;
        if (links_.paused(p)) {
          // SIGSTOP semantics: the worker is frozen — items (messages and
          // timers alike) stay queued until resume. Short poll: the policy
          // table has no wakeup hook.
          box.cv.wait_for(lock.inner(), std::chrono::microseconds(500));
          continue;
        }
        if (!box.queue.empty()) {
          const auto due = box.queue.top()->due;
          if (due <= Clock::now()) {
            item = box.queue.top();
            box.queue.pop();
            box.busy = true;
            if (box.depth_gauge != nullptr) {
              box.depth_gauge->set(static_cast<double>(box.queue.size()));
            }
            break;
          }
          box.cv.wait_until(lock.inner(), due);
        } else {
          box.cv.wait(lock.inner());
        }
      }
    }
    // A reliable message that came due while its link is cut goes back into
    // the queue (TCP stalls across the cut); it retries until the heal.
    if (!item->is_timer &&
        links_.link(item->delivery.from, p).blocked) {
      common::MutexLock lock(box.mu);
      if (is_reliable(item->delivery.channel)) {
        item->seq = box.next_seq++;
        item->due = Clock::now() + std::chrono::milliseconds(1);
        box.queue.push(item);
      }
      box.busy = false;
      continue;
    }
    if (!crashed(p)) {
      if (item->is_timer) {
        item->timer_fn();
      } else if (handlers_[p]) {
        handlers_[p](item->delivery);
      }
    }
    {
      common::MutexLock lock(box.mu);
      box.busy = false;
    }
  }
}

}  // namespace zdc::runtime
