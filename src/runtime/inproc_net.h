// Threaded in-process message bus — the real-concurrency counterpart of the
// discrete-event simulator (testbed substitution, DESIGN.md §2).
//
// Each process owns a mailbox and a dedicated worker thread; all protocol
// handlers, failure-detector ticks and timer callbacks of a process run on
// its worker, so protocol objects need no internal locking (the same
// single-writer discipline a Neko-style middleware provides). Senders may run
// on any thread: they sample an injected network delay and push into the
// destination mailbox, which delivers in due-time order.
//
// Three traffic classes share the bus:
//   kProtocol  — reliable, per-link FIFO-by-due-time unicast/broadcast (TCP)
//   kHeartbeat — failure-detector heartbeats
//   kWab       — the ordering oracle's best-effort datagrams: per-receiver
//                jitter plus optional loss, so receivers can observe
//                different firsts (collisions) exactly as on a real LAN
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "runtime/transport.h"

// Locking discipline (checked by -Wthread-safety, see Mailbox in the .cpp):
// each Mailbox owns one common::Mutex guarding its queue/rng/sequence state;
// senders on any thread push under it, the owning worker pops under it and
// runs handlers outside it.

namespace zdc::runtime {

class InprocNetwork final : public Transport {
 public:
  struct Config {
    std::uint32_t n = 0;
    std::uint64_t seed = 1;
    /// Uniform per-message delay injected on reliable channels.
    double min_delay_ms = 0.05;
    double max_delay_ms = 0.40;
    /// Extra exponential jitter on oracle datagrams (collision source).
    double wab_jitter_mean_ms = 0.15;
    /// Per-receiver loss probability of oracle datagrams.
    double wab_loss_prob = 0.0;
    /// Optional metrics sink (enqueues, drops, queue depth, labeled by the
    /// receiving process). nullptr = metrics off.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit InprocNetwork(Config cfg);
  ~InprocNetwork() override;

  InprocNetwork(const InprocNetwork&) = delete;
  InprocNetwork& operator=(const InprocNetwork&) = delete;

  // Transport:
  void set_handler(ProcessId p, Handler handler) override;
  void start() override;
  void shutdown() override;
  void send(Channel channel, ProcessId from, ProcessId to, std::string bytes,
            InstanceId wab_instance = 0) override;
  void broadcast(Channel channel, ProcessId from, std::string bytes,
                 InstanceId wab_instance = 0) override;
  void schedule(ProcessId p, double delay_ms, std::function<void()> fn) override;
  void crash(ProcessId p) override;
  [[nodiscard]] bool crashed(ProcessId p) const override;
  void restart(ProcessId p) override;
  [[nodiscard]] fault::LinkPolicy& links() override { return links_; }
  [[nodiscard]] std::uint32_t size() const override { return cfg_.n; }

 private:
  struct Item;
  struct Mailbox;

  void worker_loop(ProcessId p);
  void push(ProcessId to, Item item);
  /// Pushes a byte-flipped copy of `bytes` to `to` (the clean original still
  /// follows — corruption is surfaced, then "retransmitted").
  void deliver_corrupt(Channel channel, ProcessId from, ProcessId to,
                       const std::string& bytes, InstanceId wab_instance,
                       const fault::CorruptSpec& spec);

  Config cfg_;
  fault::LinkPolicy links_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<Handler> handlers_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> crashed_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace zdc::runtime
