#include "runtime/udp_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <queue>
#include <thread>

#include "common/assert.h"
#include "common/codec.h"
#include "fault/corrupt.h"
#include "common/log.h"
#include "common/mutex.h"

namespace zdc::runtime {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint8_t kTypeData = 0;
constexpr std::uint8_t kTypeAck = 1;
constexpr std::size_t kMaxDatagram = 60000;

Clock::time_point after_ms(double ms) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

/// Everything one process owns: socket, timers, ARQ state.
struct UdpNetwork::Endpoint {
  int fd = -1;           // immutable after the constructor
  std::uint16_t port = 0;  // immutable after the constructor
  /// Written before start(), read only by the recv thread afterwards
  /// (enforced by the assertion in set_handler — no lock needed).
  Handler handler;
  std::atomic<bool> crashed{false};

  common::Mutex mu;  // guards everything below (senders push from other threads)

  // Outbound reliable state: seq -> (destination, encoded datagram, due).
  struct Pending {
    ProcessId to = 0;
    std::string datagram;
    Clock::time_point next_retransmit;
    double backoff_ms = 0.0;  ///< next retry interval (doubles up to the cap)
  };
  std::map<std::uint64_t, Pending> unacked ZDC_GUARDED_BY(mu);
  std::uint64_t next_seq ZDC_GUARDED_BY(mu) = 1;

  // Inbound dedupe per sender: everything <= watermark seen, plus stragglers.
  struct SeenFrom {
    std::uint64_t watermark = 0;
    std::set<std::uint64_t> above;
  };
  std::map<ProcessId, SeenFrom> seen ZDC_GUARDED_BY(mu);

  // Timers.
  struct Timer {
    Clock::time_point due;
    std::uint64_t ticket;
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      return due != other.due ? due > other.due : ticket > other.ticket;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers
      ZDC_GUARDED_BY(mu);
  std::uint64_t next_ticket ZDC_GUARDED_BY(mu) = 0;

  common::Rng rng ZDC_GUARDED_BY(mu){0};

  // Pre-registered metric handles, labeled by this endpoint's process; null
  // when metrics are off. Counters/gauges are atomics — safe from the recv
  // thread and from senders alike.
  obs::Counter* sent_ctr = nullptr;
  obs::Counter* retrans_ctr = nullptr;
  obs::Counter* dropped_ctr = nullptr;
  obs::Gauge* unacked_gauge = nullptr;

  void note_unacked_depth() ZDC_REQUIRES(mu) {
    if (unacked_gauge != nullptr) {
      unacked_gauge->set(static_cast<double>(unacked.size()));
    }
  }

  ~Endpoint() {
    if (fd >= 0) ::close(fd);
  }
};

UdpNetwork::UdpNetwork(Config cfg) : cfg_(cfg), links_(cfg.n) {
  ZDC_ASSERT(cfg.n > 0);
  common::Rng seeder(cfg.seed);
  endpoints_.reserve(cfg.n);
  for (std::uint32_t p = 0; p < cfg.n; ++p) {
    auto ep = std::make_unique<Endpoint>();
    {
      // No concurrency yet (threads start in start()), but the analysis has
      // no escape analysis, so seed the guarded rng under its lock.
      common::MutexLock lock(ep->mu);
      ep->rng = common::Rng(seeder.next_u64());
    }
    ep->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ZDC_ASSERT_MSG(ep->fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // kernel-assigned port: no collisions, no config
    ZDC_ASSERT_MSG(::bind(ep->fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0,
                   "bind() failed");
    socklen_t len = sizeof addr;
    ZDC_ASSERT(::getsockname(ep->fd, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);
    ep->port = ntohs(addr.sin_port);
    if (cfg.metrics != nullptr) {
      ep->sent_ctr = &cfg.metrics->counter("zdc_udp_datagrams_sent_total",
                                           obs::process_label(p));
      ep->retrans_ctr = &cfg.metrics->counter("zdc_udp_retransmissions_total",
                                              obs::process_label(p));
      ep->dropped_ctr = &cfg.metrics->counter("zdc_udp_dropped_total",
                                              obs::process_label(p));
      ep->unacked_gauge = &cfg.metrics->gauge("zdc_udp_unacked_depth",
                                              obs::process_label(p));
    }
    endpoints_.push_back(std::move(ep));
  }
}

UdpNetwork::~UdpNetwork() { shutdown(); }

std::uint16_t UdpNetwork::port(ProcessId p) const {
  ZDC_ASSERT(p < cfg_.n);
  return endpoints_[p]->port;
}

void UdpNetwork::set_handler(ProcessId p, Handler handler) {
  ZDC_ASSERT(p < cfg_.n);
  ZDC_ASSERT_MSG(!running_.load(), "handlers must be set before start()");
  endpoints_[p]->handler = std::move(handler);
}

void UdpNetwork::start() {
  ZDC_ASSERT(!running_.exchange(true));
  threads_.reserve(cfg_.n);
  for (std::uint32_t p = 0; p < cfg_.n; ++p) {
    threads_.emplace_back([this, p] { recv_loop(p); });
  }
}

void UdpNetwork::shutdown() {
  if (!running_.load()) return;
  stopping_.store(true);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_.store(false);
}

void UdpNetwork::raw_send(ProcessId from, ProcessId to,
                          const std::string& datagram) {
  // The nemesis chokepoint: every datagram — data, ack, retransmission —
  // passes through here, so a single policy check covers the whole fabric.
  const fault::LinkState link = links_.link(from, to);
  if (!link.clean()) {
    Endpoint& sender = *endpoints_[from];
    if (link.blocked) {
      // Cut link: raw datagrams die (ARQ retries).
      if (sender.dropped_ctr != nullptr) sender.dropped_ctr->inc();
      return;
    }
    if (link.drop_prob > 0.0) {
      bool drop = false;
      {
        common::MutexLock lock(sender.mu);
        drop = sender.rng.chance(link.drop_prob);
      }
      if (drop) {
        if (sender.dropped_ctr != nullptr) sender.dropped_ctr->inc();
        return;
      }
    }
    if (link.extra_delay_ms > 0.0 && !crashed(from)) {
      // Delay spike: hold the datagram on the sender's timer wheel. Bypasses
      // the policy re-check on fire — the spike was already paid.
      schedule(from, link.extra_delay_ms, [this, from, to, datagram] {
        raw_send_now(from, to, datagram);
      });
      return;
    }
  }
  raw_send_now(from, to, datagram);
}

void UdpNetwork::raw_send_now(ProcessId from, ProcessId to,
                              const std::string& datagram) {
  ZDC_ASSERT_MSG(datagram.size() <= kMaxDatagram, "datagram too large");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_[to]->port);
  // sendto on the sender's fd is thread-safe; failures (e.g. ENOBUFS) are
  // treated as loss — the ARQ covers the reliable channel.
  (void)::sendto(endpoints_[from]->fd, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (endpoints_[from]->sent_ctr != nullptr) endpoints_[from]->sent_ctr->inc();
}

void UdpNetwork::send(Channel channel, ProcessId from, ProcessId to,
                      std::string bytes, InstanceId wab_instance) {
  ZDC_ASSERT(from < cfg_.n && to < cfg_.n);
  if (crashed(from) || crashed(to)) return;

  common::Encoder enc;
  enc.put_u8(kTypeData);
  enc.put_u8(static_cast<std::uint8_t>(channel));
  enc.put_u32(from);
  std::string datagram;
  if (is_reliable(channel)) {
    // Sequence allocation and ARQ registration form ONE critical section:
    // when they were separate, a concurrent restart(from) could clear the
    // table between them and then inherit the dead incarnation's pending
    // entry, retransmitting a pre-crash datagram from the new incarnation.
    Endpoint& ep = *endpoints_[from];
    common::MutexLock lock(ep.mu);
    // Sequence space is shared across destinations at the sender (simpler
    // and correct: the receiver dedupes per sender).
    const std::uint64_t seq = ep.next_seq++;
    enc.put_u64(seq);
    enc.put_u64(wab_instance);
    enc.put_raw(bytes);
    datagram = enc.take();
    Endpoint::Pending pending;
    pending.to = to;
    pending.datagram = datagram;
    pending.next_retransmit = after_ms(cfg_.retransmit_interval_ms);
    pending.backoff_ms = cfg_.retransmit_interval_ms;
    ep.unacked.emplace(seq, std::move(pending));
    ep.note_unacked_depth();
  } else {
    enc.put_u64(0);
    enc.put_u64(wab_instance);
    enc.put_raw(bytes);
    datagram = enc.take();
  }
  raw_send(from, to, datagram);
}

void UdpNetwork::broadcast(Channel channel, ProcessId from, std::string bytes,
                           InstanceId wab_instance) {
  // Equivocation (duplicate-divergent-send): the broadcast also carries a
  // divergent duplicate to every remote receiver, each copy flipped in a
  // different bit. The duplicate gets its own fresh sequence number and ARQ
  // entry — reusing the original's seq would let the receiver's dedupe
  // record the corrupted copy and reject the clean original as a duplicate.
  const bool equivocating = is_reliable(channel) && !crashed(from) &&
                            links_.consume_equivocation(from);
  for (ProcessId to = 0; to < cfg_.n; ++to) {
    send(channel, from, to, bytes, wab_instance);
    if (equivocating && to != from) {
      send(channel, from, to,
           fault::bit_flip_copy(bytes, fault::kMiddleByte, to % 8u),
           wab_instance);
    }
  }
}

void UdpNetwork::schedule(ProcessId p, double delay_ms,
                          std::function<void()> fn) {
  ZDC_ASSERT(p < cfg_.n);
  if (crashed(p)) return;
  Endpoint& ep = *endpoints_[p];
  common::MutexLock lock(ep.mu);
  Endpoint::Timer timer;
  timer.due = after_ms(delay_ms);
  timer.ticket = ep.next_ticket++;
  timer.fn = std::move(fn);
  ep.timers.push(std::move(timer));
}

void UdpNetwork::crash(ProcessId p) {
  ZDC_ASSERT(p < cfg_.n);
  endpoints_[p]->crashed.store(true);
  // Peers stop retransmitting towards p.
  for (std::uint32_t q = 0; q < cfg_.n; ++q) {
    Endpoint& ep = *endpoints_[q];
    common::MutexLock lock(ep.mu);
    for (auto it = ep.unacked.begin(); it != ep.unacked.end();) {
      it = it->second.to == p ? ep.unacked.erase(it) : std::next(it);
    }
    ep.note_unacked_depth();
  }
}

bool UdpNetwork::crashed(ProcessId p) const {
  return endpoints_[p]->crashed.load();
}

void UdpNetwork::restart(ProcessId p) {
  ZDC_ASSERT(p < cfg_.n);
  Endpoint& ep = *endpoints_[p];
  if (!ep.crashed.load()) return;
  {
    common::MutexLock lock(ep.mu);
    // The dead incarnation's volatile transport state is gone: its pending
    // retransmissions and timers died with it. next_seq and the per-sender
    // dedupe maps are kept monotonic across incarnations, so peers' ack
    // watermarks stay valid and pre-crash stragglers are still rejected.
    ep.unacked.clear();
    ep.note_unacked_depth();
    while (!ep.timers.empty()) ep.timers.pop();
  }
  // The recv thread has been draining and discarding the socket while
  // crashed, so no pre-crash datagrams are waiting. Flip last: from here on
  // the endpoint receives again.
  ep.crashed.store(false);
}

void UdpNetwork::handle_datagram(ProcessId p, const char* data,
                                 std::size_t len) {
  Endpoint& ep = *endpoints_[p];
  common::Decoder dec(std::string_view(data, len));
  const std::uint8_t type = dec.get_u8();
  if (!dec.ok()) return;

  if (type == kTypeAck) {
    const ProcessId acker = dec.get_u32();
    const std::uint64_t seq = dec.get_u64();
    if (!dec.done() || acker >= cfg_.n) return;
    common::MutexLock lock(ep.mu);
    ep.unacked.erase(seq);
    ep.note_unacked_depth();
    return;
  }
  if (type != kTypeData) return;

  const auto channel = static_cast<Channel>(dec.get_u8());
  const ProcessId from = dec.get_u32();
  const std::uint64_t seq = dec.get_u64();
  const InstanceId wab_instance = dec.get_u64();
  std::string payload = dec.get_rest();
  if (from >= cfg_.n) return;

  if (is_reliable(channel)) {
    fault::CorruptSpec spec;
    if (links_.consume_corruption(from, p, &spec)) {
      // Byte-flip on the wire (flip/scorrupt budget): the receiver sees the
      // corrupted payload now, but neither acks nor dedupe-records the
      // sequence number — so the sender's ARQ retransmits and the clean
      // original still arrives. Detectable corruption costs one
      // retransmission interval, never the message.
      fault::bit_flip(payload, fault::resolve_flip_byte(spec.byte,
                                                        payload.size()),
                      spec.bit);
      if (ep.handler) {
        Delivery d;
        d.channel = channel;
        d.from = from;
        d.bytes = std::move(payload);
        d.wab_instance = wab_instance;
        ep.handler(d);
      }
      return;
    }
    // Ack unconditionally (duplicates included: the ack may have been lost).
    common::Encoder ack;
    ack.put_u8(kTypeAck);
    ack.put_u32(p);
    ack.put_u64(seq);
    raw_send(p, from, ack.take());

    // Dedupe per sender. Scoped: the handler below may send to self, which
    // re-locks this same mutex.
    {
      common::MutexLock lock(ep.mu);
      auto& seen = ep.seen[from];
      if (seq <= seen.watermark || seen.above.count(seq) != 0) return;
      seen.above.insert(seq);
      while (seen.above.count(seen.watermark + 1) != 0) {
        seen.above.erase(seen.watermark + 1);
        ++seen.watermark;
      }
    }
  }

  if (ep.handler) {
    Delivery d;
    d.channel = channel;
    d.from = from;
    d.bytes = std::move(payload);
    d.wab_instance = wab_instance;
    ep.handler(d);
  }
}

void UdpNetwork::run_due_work(ProcessId p) {
  Endpoint& ep = *endpoints_[p];
  const Clock::time_point now = Clock::now();

  // Timers (run outside the lock; they may send).
  std::vector<std::function<void()>> due;
  {
    common::MutexLock lock(ep.mu);
    while (!ep.timers.empty() && ep.timers.top().due <= now) {
      due.push_back(ep.timers.top().fn);
      ep.timers.pop();
    }
  }
  for (auto& fn : due) fn();

  // ARQ retransmissions, with exponential backoff: a datagram that keeps
  // going unacked (receiver slow, link cut) retries at doubling intervals up
  // to the cap instead of hammering at the base rate forever.
  std::vector<std::pair<ProcessId, std::string>> resend;
  {
    common::MutexLock lock(ep.mu);
    for (auto it = ep.unacked.begin(); it != ep.unacked.end();) {
      auto& pending = it->second;
      // Entries towards a crashed destination are purged here, not just
      // skipped: crash(to)'s purge races in-flight send()s, so an entry
      // registered just after it would otherwise sit in the table (and back
      // off against a corpse) until the destination restarts and acks.
      if (crashed(pending.to)) {
        it = ep.unacked.erase(it);
        continue;
      }
      if (pending.next_retransmit <= now) {
        resend.emplace_back(pending.to, pending.datagram);
        pending.backoff_ms =
            std::min(pending.backoff_ms * 2.0, cfg_.retransmit_cap_ms);
        pending.next_retransmit = after_ms(pending.backoff_ms);
      }
      ++it;
    }
    ep.note_unacked_depth();
  }
  for (const auto& [to, datagram] : resend) {
    if (!crashed(to)) {
      retransmissions_.fetch_add(1, std::memory_order_relaxed);
      if (ep.retrans_ctr != nullptr) ep.retrans_ctr->inc();
      raw_send(p, to, datagram);
    }
  }
}

void UdpNetwork::recv_loop(ProcessId p) {
  Endpoint& ep = *endpoints_[p];
  std::vector<char> buffer(kMaxDatagram + 1);
  while (!stopping_.load()) {
    if (links_.paused(p)) {
      // SIGSTOP semantics: no receiving, no timers, no ARQ retransmissions.
      // The kernel keeps buffering inbound datagrams (delivered stale after
      // resume, exactly like a real stopped process).
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      continue;
    }
    pollfd pfd{};
    pfd.fd = ep.fd;
    pfd.events = POLLIN;
    const int poll_ms =
        std::max(1, static_cast<int>(cfg_.retransmit_interval_ms / 2));
    const int ready = ::poll(&pfd, 1, poll_ms);
    if (ready > 0 && (pfd.revents & POLLIN) != 0) {
      const ssize_t got =
          ::recvfrom(ep.fd, buffer.data(), buffer.size(), 0, nullptr, nullptr);
      if (got > 0 && !ep.crashed.load()) {
        bool drop = false;
        if (cfg_.drop_prob > 0.0) {
          common::MutexLock lock(ep.mu);
          drop = ep.rng.chance(cfg_.drop_prob);
        }
        if (!drop) {
          handle_datagram(p, buffer.data(), static_cast<std::size_t>(got));
        } else if (ep.dropped_ctr != nullptr) {
          ep.dropped_ctr->inc();
        }
      }
    }
    if (!ep.crashed.load()) run_due_work(p);
  }
}

}  // namespace zdc::runtime
