#include "runtime/heartbeat_fd.h"

#include "common/assert.h"
#include "common/log.h"

namespace zdc::runtime {

HeartbeatFd::HeartbeatFd(ProcessId self, Transport& net, Config cfg,
                         std::function<void()> on_change)
    : self_(self),
      net_(net),
      cfg_(cfg),
      on_change_(std::move(on_change)),
      last_seen_(net.size(), Clock::now()),
      timeout_ms_(net.size(), cfg.initial_timeout_ms),
      suspected_(std::make_unique<std::atomic<bool>[]>(net.size())),
      n_(net.size()),
      omega_(*this, net.size()) {
  for (std::uint32_t p = 0; p < n_; ++p) {
    suspected_[p].store(false, std::memory_order_relaxed);
  }
}

void HeartbeatFd::start() {
  ZDC_ASSERT(!started_);
  started_ = true;
  net_.schedule(self_, 0.0, [this] { tick(); });
}

void HeartbeatFd::on_heartbeat(ProcessId from) {
  if (from >= n_) return;
  last_seen_[from] = Clock::now();
  if (suspected_[from].load(std::memory_order_relaxed)) {
    // False suspicion: revoke and back off this peer's timeout so that, once
    // delays stabilize, it is never falsely suspected again.
    suspected_[from].store(false, std::memory_order_release);
    timeout_ms_[from] += cfg_.timeout_increment_ms;
    false_suspicions_.fetch_add(1, std::memory_order_relaxed);
    ZDC_LOG(kDebug, "heartbeat-fd")
        << "p" << self_ << " unsuspects p" << from << ", timeout now "
        << timeout_ms_[from] << "ms";
    if (on_change_) on_change_();
  }
}

bool HeartbeatFd::suspects(ProcessId p) const {
  return p < n_ && suspected_[p].load(std::memory_order_acquire);
}

void HeartbeatFd::tick() {
  net_.broadcast(Channel::kHeartbeat, self_, "");
  last_seen_[self_] = Clock::now();  // never suspect yourself

  bool changed = false;
  const Clock::time_point now = Clock::now();
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_ || suspected_[p].load(std::memory_order_relaxed)) continue;
    const double silent_ms =
        std::chrono::duration<double, std::milli>(now - last_seen_[p]).count();
    if (silent_ms > timeout_ms_[p]) {
      suspected_[p].store(true, std::memory_order_release);
      changed = true;
      ZDC_LOG(kDebug, "heartbeat-fd")
          << "p" << self_ << " suspects p" << p << " after " << silent_ms
          << "ms of silence";
    }
  }
  if (changed && on_change_) on_change_();
  net_.schedule(self_, cfg_.interval_ms, [this] { tick(); });
}

}  // namespace zdc::runtime
