#include "runtime/heartbeat_fd.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/log.h"

namespace zdc::runtime {

HeartbeatFd::HeartbeatFd(ProcessId self, Transport& net, Config cfg,
                         std::function<void()> on_change)
    : self_(self),
      net_(net),
      cfg_(cfg),
      on_change_(std::move(on_change)),
      last_seen_(net.size(), Clock::now()),
      bonus_ms_(net.size(), 0.0),
      mean_gap_ms_(net.size(), 0.0),
      dev_gap_ms_(net.size(), 0.0),
      have_gap_(net.size(), false),
      suspected_(std::make_unique<std::atomic<bool>[]>(net.size())),
      n_(net.size()),
      omega_(*this, net.size()) {
  for (std::uint32_t p = 0; p < n_; ++p) {
    suspected_[p].store(false, std::memory_order_relaxed);
  }
  if (cfg_.metrics != nullptr) {
    suspicions_ctr_ = &cfg_.metrics->counter("zdc_fd_suspicions_total",
                                             obs::process_label(self_));
    adaptations_ctr_ = &cfg_.metrics->counter(
        "zdc_fd_timeout_adaptations_total", obs::process_label(self_));
  }
}

double HeartbeatFd::effective_timeout_ms(ProcessId p) const {
  if (!cfg_.adaptive || p >= n_ || !have_gap_[p]) {
    return cfg_.initial_timeout_ms + (p < n_ ? bonus_ms_[p] : 0.0);
  }
  const double adaptive = mean_gap_ms_[p] +
                          cfg_.deviation_factor * dev_gap_ms_[p] +
                          cfg_.margin_ms + bonus_ms_[p];
  return std::max(cfg_.min_timeout_ms, adaptive);
}

void HeartbeatFd::start() {
  ZDC_ASSERT(!started_);
  started_ = true;
  net_.schedule(self_, 0.0, [this] { tick(); });
}

void HeartbeatFd::on_heartbeat(ProcessId from) {
  if (from >= n_) return;
  const Clock::time_point now = Clock::now();
  const bool was_suspected = suspected_[from].load(std::memory_order_relaxed);
  if (cfg_.adaptive && from != self_ && !was_suspected) {
    // Jacobson/Karels estimator over inter-arrival gaps. Gaps spanning a
    // suspicion are excluded: a pause/crash outage would blow the mean up and
    // stall completeness for everyone's benefit of one outlier — the
    // false-suspicion bonus below handles those instead.
    const double gap_ms =
        std::chrono::duration<double, std::milli>(now - last_seen_[from])
            .count();
    if (!have_gap_[from]) {
      mean_gap_ms_[from] = gap_ms;
      dev_gap_ms_[from] = gap_ms / 2.0;
      have_gap_[from] = true;
    } else {
      const double err = gap_ms - mean_gap_ms_[from];
      mean_gap_ms_[from] += err / 8.0;
      dev_gap_ms_[from] += (std::abs(err) - dev_gap_ms_[from]) / 4.0;
    }
  }
  last_seen_[from] = now;
  if (was_suspected) {
    // False suspicion: revoke and back off this peer's timeout so that, once
    // delays stabilize, it is never falsely suspected again.
    suspected_[from].store(false, std::memory_order_release);
    bonus_ms_[from] += cfg_.timeout_increment_ms;
    false_suspicions_.fetch_add(1, std::memory_order_relaxed);
    if (adaptations_ctr_ != nullptr) adaptations_ctr_->inc();
    ZDC_LOG(kDebug, "heartbeat-fd")
        << "p" << self_ << " unsuspects p" << from << ", timeout now "
        << effective_timeout_ms(from) << "ms";
    if (on_change_) on_change_();
  }
}

void HeartbeatFd::restart_on_worker() {
  const Clock::time_point now = Clock::now();
  for (ProcessId p = 0; p < n_; ++p) last_seen_[p] = now;
  tick();
}

bool HeartbeatFd::suspects(ProcessId p) const {
  return p < n_ && suspected_[p].load(std::memory_order_acquire);
}

void HeartbeatFd::tick() {
  net_.broadcast(Channel::kHeartbeat, self_, "");
  last_seen_[self_] = Clock::now();  // never suspect yourself

  bool changed = false;
  const Clock::time_point now = Clock::now();
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_ || suspected_[p].load(std::memory_order_relaxed)) continue;
    const double silent_ms =
        std::chrono::duration<double, std::milli>(now - last_seen_[p]).count();
    if (silent_ms > effective_timeout_ms(p)) {
      suspected_[p].store(true, std::memory_order_release);
      changed = true;
      if (suspicions_ctr_ != nullptr) suspicions_ctr_->inc();
      ZDC_LOG(kDebug, "heartbeat-fd")
          << "p" << self_ << " suspects p" << p << " after " << silent_ms
          << "ms of silence";
    }
  }
  if (changed && on_change_) on_change_();
  net_.schedule(self_, cfg_.interval_ms, [this] { tick(); });
}

}  // namespace zdc::runtime
