#include "runtime/heartbeat_fd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"
#include "common/codec.h"
#include "common/log.h"

namespace zdc::runtime {

HeartbeatFd::HeartbeatFd(ProcessId self, Transport& net, Config cfg,
                         std::function<void()> on_change)
    : self_(self),
      net_(net),
      cfg_(cfg),
      on_change_(std::move(on_change)),
      last_seen_(net.size(), Clock::now()),
      last_endorsed_me_(net.size(), Clock::now()),
      endorses_me_(net.size(), false),
      endorse_since_(net.size(), Clock::now()),
      epoch_(Clock::now()),
      bonus_ms_(net.size(), 0.0),
      mean_gap_ms_(net.size(), 0.0),
      dev_gap_ms_(net.size(), 0.0),
      have_gap_(net.size(), false),
      suspected_(std::make_unique<std::atomic<bool>[]>(net.size())),
      n_(net.size()),
      omega_(*this, net.size()) {
  for (std::uint32_t p = 0; p < n_; ++p) {
    suspected_[p].store(false, std::memory_order_relaxed);
  }
  if (cfg_.metrics != nullptr) {
    suspicions_ctr_ = &cfg_.metrics->counter("zdc_fd_suspicions_total",
                                             obs::process_label(self_));
    adaptations_ctr_ = &cfg_.metrics->counter(
        "zdc_fd_timeout_adaptations_total", obs::process_label(self_));
  }
}

double HeartbeatFd::effective_timeout_ms(ProcessId p) const {
  if (!cfg_.adaptive || p >= n_ || !have_gap_[p]) {
    return cfg_.initial_timeout_ms + (p < n_ ? bonus_ms_[p] : 0.0);
  }
  const double adaptive = mean_gap_ms_[p] +
                          cfg_.deviation_factor * dev_gap_ms_[p] +
                          cfg_.margin_ms + bonus_ms_[p];
  return std::max(cfg_.min_timeout_ms, adaptive);
}

double HeartbeatFd::ms_since_quorum_endorsement() const {
  // Majority endorsement freshness: collect each process's "age of its last
  // heartbeat naming me leader" (self = 0, a peer currently naming someone
  // else = +inf) and take the (⌈n/2⌉)-th smallest — the youngest age such
  // that a majority endorses this process within it.
  const Clock::time_point now = Clock::now();
  std::vector<double> ages;
  ages.reserve(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_) {
      ages.push_back(0.0);
    } else if (!endorses_me_[p]) {
      ages.push_back(std::numeric_limits<double>::infinity());
    } else {
      ages.push_back(std::chrono::duration<double, std::milli>(
                         now - last_endorsed_me_[p])
                         .count());
    }
  }
  const std::size_t majority = n_ / 2 + 1;
  std::nth_element(ages.begin(), ages.begin() + (majority - 1), ages.end());
  return ages[majority - 1];
}

double HeartbeatFd::quorum_endorsement_streak_ms() const {
  if (ms_since_quorum_endorsement() >= cfg_.endorsement_stale_ms) return 0.0;
  // Each process's "endorsing continuously since" clock: self from
  // construction, an endorsing peer from the start of its unbroken run
  // (on_heartbeat resets endorse_since_ across any >= stale gap), a
  // non-endorsing or stale peer never. A member with held-since h was fresh
  // at every instant of [h, now] — its endorsing heartbeats since h are
  // less than one stale-bound apart — so the (⌈n/2⌉)-th smallest held-since
  // H gives a FIXED majority that has endorsed throughout [H, now]. That is
  // the continuity a new leader's pre-serve wait is measured against;
  // taking the k-th smallest of per-member starts is conservative (a
  // rotating quorum could have held longer), which only delays serving.
  const Clock::time_point now = Clock::now();
  std::vector<double> held_ms;
  held_ms.reserve(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_) {
      held_ms.push_back(
          std::chrono::duration<double, std::milli>(now - epoch_).count());
    } else if (!endorses_me_[p] ||
               std::chrono::duration<double, std::milli>(
                   now - last_endorsed_me_[p])
                       .count() >= cfg_.endorsement_stale_ms) {
      held_ms.push_back(0.0);
    } else {
      held_ms.push_back(std::chrono::duration<double, std::milli>(
                            now - endorse_since_[p])
                            .count());
    }
  }
  const std::size_t majority = n_ / 2 + 1;
  // k-th LONGEST held duration == duration held by the k-th best member.
  std::nth_element(held_ms.begin(), held_ms.begin() + (majority - 1),
                   held_ms.end(), std::greater<>());
  return held_ms[majority - 1];
}

void HeartbeatFd::start() {
  ZDC_ASSERT(!started_);
  started_ = true;
  net_.schedule(self_, 0.0, [this] { tick(); });
}

void HeartbeatFd::on_heartbeat(ProcessId from, ProcessId endorsed_leader) {
  if (from >= n_) return;
  const Clock::time_point now = Clock::now();
  if (from != self_) {
    // Endorsement tracking: a heartbeat naming self refreshes the peer's
    // endorsement; one naming anyone else revokes it on the spot (the
    // conservative direction — a revoked endorsement can only downgrade a
    // read to consensus, never serve a stale one).
    const bool endorsing_now = (endorsed_leader == self_);
    if (endorsing_now) {
      // A run is unbroken only while consecutive endorsing heartbeats are
      // less than one stale-bound apart; otherwise the streak restarts here
      // (the peer's endorsement had lapsed in between).
      const double gap_ms = std::chrono::duration<double, std::milli>(
                                now - last_endorsed_me_[from])
                                .count();
      if (!endorses_me_[from] || gap_ms >= cfg_.endorsement_stale_ms) {
        endorse_since_[from] = now;
      }
      last_endorsed_me_[from] = now;
    }
    endorses_me_[from] = endorsing_now;
  }
  const bool was_suspected = suspected_[from].load(std::memory_order_relaxed);
  if (cfg_.adaptive && from != self_ && !was_suspected) {
    // Jacobson/Karels estimator over inter-arrival gaps. Gaps spanning a
    // suspicion are excluded: a pause/crash outage would blow the mean up and
    // stall completeness for everyone's benefit of one outlier — the
    // false-suspicion bonus below handles those instead.
    const double gap_ms =
        std::chrono::duration<double, std::milli>(now - last_seen_[from])
            .count();
    if (!have_gap_[from]) {
      mean_gap_ms_[from] = gap_ms;
      dev_gap_ms_[from] = gap_ms / 2.0;
      have_gap_[from] = true;
    } else {
      const double err = gap_ms - mean_gap_ms_[from];
      mean_gap_ms_[from] += err / 8.0;
      dev_gap_ms_[from] += (std::abs(err) - dev_gap_ms_[from]) / 4.0;
    }
  }
  last_seen_[from] = now;
  if (was_suspected) {
    // False suspicion: revoke and back off this peer's timeout so that, once
    // delays stabilize, it is never falsely suspected again.
    suspected_[from].store(false, std::memory_order_release);
    bonus_ms_[from] += cfg_.timeout_increment_ms;
    false_suspicions_.fetch_add(1, std::memory_order_relaxed);
    if (adaptations_ctr_ != nullptr) adaptations_ctr_->inc();
    ZDC_LOG(kDebug, "heartbeat-fd")
        << "p" << self_ << " unsuspects p" << from << ", timeout now "
        << effective_timeout_ms(from) << "ms";
    if (on_change_) on_change_();
  }
}

void HeartbeatFd::restart_on_worker() {
  const Clock::time_point now = Clock::now();
  for (ProcessId p = 0; p < n_; ++p) {
    last_seen_[p] = now;
    // Endorsements from before the outage are void: peers may have moved to
    // another leader while this socket was dead. Invalidate (not refresh) —
    // the lease gate must start from scratch.
    endorses_me_[p] = false;
  }
  epoch_ = now;  // self's held-since restarts with the incarnation
  tick();
}

bool HeartbeatFd::suspects(ProcessId p) const {
  return p < n_ && suspected_[p].load(std::memory_order_acquire);
}

void HeartbeatFd::tick() {
  // The payload carries this process's current Ω estimate — the endorsement
  // that read-index leases are built from (see ms_since_quorum_endorsement).
  common::Encoder hb;
  hb.put_u32(omega_.leader());
  net_.broadcast(Channel::kHeartbeat, self_, hb.take());
  last_seen_[self_] = Clock::now();  // never suspect yourself

  bool changed = false;
  const Clock::time_point now = Clock::now();
  for (ProcessId p = 0; p < n_; ++p) {
    if (p == self_ || suspected_[p].load(std::memory_order_relaxed)) continue;
    const double silent_ms =
        std::chrono::duration<double, std::milli>(now - last_seen_[p]).count();
    if (silent_ms > effective_timeout_ms(p)) {
      suspected_[p].store(true, std::memory_order_release);
      changed = true;
      if (suspicions_ctr_ != nullptr) suspicions_ctr_->inc();
      ZDC_LOG(kDebug, "heartbeat-fd")
          << "p" << self_ << " suspects p" << p << " after " << silent_ms
          << "ms of silence";
    }
  }
  if (changed && on_change_) on_change_();
  net_.schedule(self_, cfg_.interval_ms, [this] { tick(); });
}

}  // namespace zdc::runtime
