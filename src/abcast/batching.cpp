#include "abcast/batching.h"

#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"

namespace zdc::abcast {

void configure_batching(AtomicBroadcast& protocol,
                        const BatchingOptions& opts) {
  if (auto* paxos = dynamic_cast<PaxosAbcast*>(&protocol)) {
    paxos->pipeline_window_ = opts.paxos_pipeline_window;
  }
  if (auto* c_abcast = dynamic_cast<CAbcast*>(&protocol)) {
    c_abcast->max_batch_ = opts.c_abcast_max_batch;
  }
}

}  // namespace zdc::abcast
