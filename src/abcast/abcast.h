// Atomic broadcast interface (paper Sec. 3.3) and the application-message
// model shared by every abcast protocol.
//
// Application messages are identified by (sender, sequence) pairs; batches of
// messages are serialized in canonical (sender, seq)-sorted order so that two
// processes holding the same set produce byte-identical consensus proposals —
// the property the one-step fast path hinges on.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/stats.h"
#include "common/types.h"

namespace zdc::abcast {

/// Unique identity of an a-broadcast application message.
struct MsgId {
  ProcessId sender = 0;
  std::uint64_t seq = 0;

  friend auto operator<=>(const MsgId&, const MsgId&) = default;
};

struct AppMessage {
  MsgId id;
  std::string payload;

  friend bool operator==(const AppMessage&, const AppMessage&) = default;
};

/// Canonically ordered message batch: the unit proposed to consensus.
using MsgSet = std::map<MsgId, std::string>;

/// Serializes a batch in canonical order (deterministic across processes).
std::string encode_msg_set(const MsgSet& set);
/// Parses a batch; returns false (leaving `out` empty) on malformed input.
bool decode_msg_set(std::string_view bytes, MsgSet& out);

/// Environment of an abcast protocol instance. broadcast() must deliver to
/// every process including the sender; w_broadcast feeds the WAB ordering
/// oracle (only C-Abcast/WABCast use it; Paxos-Abcast never calls it).
class AbcastHost {
 public:
  virtual ~AbcastHost() = default;
  virtual void send(ProcessId to, std::string bytes) = 0;
  virtual void broadcast(std::string bytes) = 0;
  virtual void w_broadcast(InstanceId k, std::string payload) = 0;
  /// Upcall: message delivered in the total order.
  virtual void a_deliver(const AppMessage& m) = 0;
};

struct AbcastMetrics {
  std::uint64_t a_broadcasts = 0;
  std::uint64_t a_deliveries = 0;
  std::uint64_t w_broadcasts = 0;
  std::uint64_t consensus_instances = 0;
  common::ProtocolMetrics transport;  ///< unicasts/bytes incl. sub-consensus
};

class AtomicBroadcast {
 public:
  AtomicBroadcast(ProcessId self, GroupParams group, AbcastHost& host)
      : self_(self), group_(group), host_(host) {}
  virtual ~AtomicBroadcast() = default;

  AtomicBroadcast(const AtomicBroadcast&) = delete;
  AtomicBroadcast& operator=(const AtomicBroadcast&) = delete;

  /// a-broadcast(m): assigns the next local sequence number and injects the
  /// message into the protocol. Returns the id (the harness keys latency
  /// measurements on it).
  MsgId a_broadcast(std::string payload);

  /// Feeds one transport message addressed to this protocol.
  virtual void on_message(ProcessId from, std::string_view bytes) = 0;
  /// Feeds one WAB oracle delivery (instance k, origin, oracle payload).
  virtual void on_w_deliver(InstanceId k, ProcessId origin,
                            const std::string& payload);
  /// Failure-detector output changed.
  virtual void on_fd_change() {}

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const AbcastMetrics& metrics() const { return metrics_; }

  /// Folds any sub-protocol accounting into metrics(). Harnesses call this
  /// exactly once, after the run; the protocol may become inert afterwards.
  virtual void finalize_metrics() {}

 protected:
  /// Protocol-specific handling of a freshly a-broadcast message.
  virtual void submit(AppMessage m) = 0;

  void deliver(const AppMessage& m) {
    ++metrics_.a_deliveries;
    host_.a_deliver(m);
  }

  const ProcessId self_;
  const GroupParams group_;
  AbcastHost& host_;
  AbcastMetrics metrics_;

 private:
  std::uint64_t next_seq_ = 1;
};

}  // namespace zdc::abcast
