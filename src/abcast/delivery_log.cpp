#include "abcast/delivery_log.h"

#include <algorithm>

#include "common/assert.h"

namespace zdc::abcast {

DeliveryLog::DeliveryLog(std::uint32_t n, Config cfg)
    : cfg_(cfg), acked_(n, 0) {
  ZDC_ASSERT(n > 0);
}

std::uint64_t DeliveryLog::append(std::string command) {
  entries_.push_back(std::move(command));
  return next_++;
}

void DeliveryLog::reset_to(std::uint64_t next_index) {
  ZDC_ASSERT(next_index >= 1);
  entries_.clear();
  first_ = next_ = next_index;
}

void DeliveryLog::ack(ProcessId p, std::uint64_t applied) {
  ZDC_ASSERT(p < acked_.size());
  acked_[p] = std::max(acked_[p], applied);
}

std::uint64_t DeliveryLog::min_acked() const {
  return *std::min_element(acked_.begin(), acked_.end());
}

std::uint64_t DeliveryLog::gc() {
  std::uint64_t dropped = 0;
  // Commit tracking: entries everyone applied can never be requested again
  // over the entry path (requests always start at applied + 1).
  const std::uint64_t all_acked = min_acked();
  while (first_ <= all_acked && first_ < next_) {
    entries_.pop_front();
    ++first_;
    ++dropped;
  }
  // Retention cap: forced GC. A replica that still needed a dropped entry
  // gets the snapshot fallback instead, so this only costs bandwidth.
  if (cfg_.max_retained > 0) {
    while (next_ - first_ > cfg_.max_retained) {
      entries_.pop_front();
      ++first_;
      ++dropped;
    }
  }
  return dropped;
}

const std::string* DeliveryLog::entry(std::uint64_t index) const {
  if (index < first_ || index >= next_) return nullptr;
  return &entries_[index - first_];
}

}  // namespace zdc::abcast
