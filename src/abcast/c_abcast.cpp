#include "abcast/c_abcast.h"

#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "consensus/wab_consensus.h"

namespace zdc::abcast {

class CAbcast::InstanceHost final : public consensus::ConsensusHost {
 public:
  InstanceHost(CAbcast& outer, InstanceId k) : outer_(outer), k_(k) {}

  void send(ProcessId to, std::string bytes) override {
    outer_.host_.send(to, wrap(std::move(bytes)));
  }
  void broadcast(std::string bytes) override {
    outer_.host_.broadcast(wrap(std::move(bytes)));
  }
  void deliver_decision(const Value& v) override {
    outer_.on_instance_decided(k_, v);
  }

  void w_broadcast(std::uint64_t stage, std::string payload) override {
    // Consensus-internal oracle stages share the round's id space (stage 0 is
    // the round's own w-broadcast, so sub-stages start at 1).
    ZDC_ASSERT(stage > 0 && stage <= kStageMask);
    ++outer_.metrics_.w_broadcasts;
    outer_.host_.w_broadcast((k_ << kStageBits) | stage, std::move(payload));
  }

 private:
  [[nodiscard]] std::string wrap(std::string bytes) const {
    common::Encoder enc;
    enc.put_u8(kConsTag);
    enc.put_u64(k_);
    enc.put_raw(bytes);
    return enc.take();
  }

  CAbcast& outer_;
  InstanceId k_;
};

struct CAbcast::Instance {
  explicit Instance(CAbcast& outer, InstanceId k) : host(outer, k) {}
  InstanceHost host;
  std::unique_ptr<consensus::Consensus> cons;
  std::optional<Value> decision;
  common::ProtocolMetrics final_metrics;  ///< captured at prune time
};

CAbcast::CAbcast(ProcessId self, GroupParams group, AbcastHost& host,
                 consensus::ConsensusFactory factory, std::string display_name)
    : AtomicBroadcast(self, group, host),
      factory_(std::move(factory)),
      display_name_(std::move(display_name)) {}

CAbcast::~CAbcast() = default;

CAbcast::Instance& CAbcast::instance(InstanceId k) {
  auto it = instances_.find(k);
  if (it == instances_.end()) {
    auto inst = std::make_unique<Instance>(*this, k);
    inst->cons = factory_(self_, group_, inst->host);
    ++metrics_.consensus_instances;
    it = instances_.emplace(k, std::move(inst)).first;
  }
  return *it->second;
}

void CAbcast::submit(AppMessage m) {
  if (adelivered_.count(m.id) != 0) return;
  estimate_.emplace(m.id, std::move(m.payload));
  step();
}

void CAbcast::on_message(ProcessId from, std::string_view bytes) {
  common::Decoder dec(bytes);
  const std::uint8_t tag = dec.get_u8();
  const InstanceId k = dec.get_u64();
  if (!dec.ok() || tag != kConsTag || k == 0) return;  // malformed
  if (k + kPruneWindow < round_) return;  // instance pruned, decision flooded
  Instance& inst = instance(k);
  if (inst.cons != nullptr) inst.cons->on_message(from, dec.get_rest());
  step();
}

void CAbcast::on_w_deliver(InstanceId raw, ProcessId origin,
                           const std::string& payload) {
  const InstanceId k = raw >> kStageBits;
  const InstanceId stage = raw & kStageMask;
  if (k == 0) return;  // malformed id
  if (stage != 0) {
    // Consensus-internal oracle traffic: route to the instance.
    if (k + kPruneWindow < round_) return;
    Instance& inst = instance(k);
    if (inst.cons != nullptr) inst.cons->on_w_deliver(stage, origin, payload);
    step();
    return;
  }

  MsgSet batch;
  if (!decode_msg_set(payload, batch)) return;

  // Record the round's first oracle output — the consensus proposal (line 7).
  if (k >= round_) firsts_.emplace(k, payload);

  // Line 16 (strengthened, see header): merge every w-delivered message that
  // has not been a-delivered into the estimate.
  for (auto& [id, body] : batch) {
    if (adelivered_.count(id) == 0) estimate_.emplace(id, std::move(body));
  }
  step();
}

void CAbcast::on_fd_change() {
  for (auto& [k, inst] : instances_) {
    if (inst->cons != nullptr) inst->cons->on_fd_change();
  }
  step();
}

void CAbcast::on_instance_decided(InstanceId k, const Value& v) {
  instance(k).decision = v;
  step();
}

std::size_t CAbcast::encode_pending(std::string* out) const {
  // Two cheap passes over the (already canonically ordered) estimate instead
  // of copying payloads into a scratch MsgSet: first size the batch, then
  // encode straight into a right-sized buffer. Byte-identical to
  // encode_msg_set() of the equivalent MsgSet.
  std::size_t count = 0;
  std::size_t bytes = 4;
  for (const auto& [id, body] : estimate_) {
    if (adelivered_.count(id) != 0) continue;
    ++count;
    bytes += 16 + body.size();
    if (max_batch_ != 0 && count >= max_batch_) break;
  }
  common::Encoder enc(bytes);
  enc.put_u32(static_cast<std::uint32_t>(count));
  std::size_t emitted = 0;
  for (const auto& [id, body] : estimate_) {
    if (emitted == count) break;
    if (adelivered_.count(id) != 0) continue;
    enc.put_u32(id.sender);
    enc.put_u64(id.seq);
    enc.put_string(body);
    ++emitted;
  }
  *out = enc.take();
  return count;
}

void CAbcast::step() {
  if (driving_) return;  // re-entrancy from nested upcalls; outer loop resumes
  driving_ = true;
  for (;;) {
    // A stored decision for the current round completes it regardless of
    // phase — this is both the normal completion and the catch-up path.
    const auto inst_it = instances_.find(round_);
    if (inst_it != instances_.end() && inst_it->second->decision.has_value()) {
      complete_round(*inst_it->second->decision);
      continue;
    }

    if (phase_ == Phase::kIdle) {
      // Lines 14-15: only start a round when there is something to order or
      // somebody else already started it.
      std::string batch;
      const std::size_t pending = encode_pending(&batch);
      if (pending == 0 && firsts_.find(round_) == firsts_.end()) break;
      // Line 6: w-broadcast the estimate (possibly empty, if we were woken by
      // another process's round-k broadcast). Sub-stage 0 = the round itself.
      ++metrics_.w_broadcasts;
      host_.w_broadcast(round_ << kStageBits, std::move(batch));
      phase_ = Phase::kWaitFirst;
      continue;
    }

    if (phase_ == Phase::kWaitFirst) {
      const auto first_it = firsts_.find(round_);
      if (first_it == firsts_.end()) break;  // line 7: still waiting
      // Line 8: propose the first oracle output of this round.
      Instance& inst = instance(round_);
      phase_ = Phase::kDeciding;
      inst.cons->propose(first_it->second);
      continue;  // propose may have decided synchronously via buffered DECIDE
    }

    // Phase::kDeciding — waiting for the instance decision upcall.
    break;
  }
  driving_ = false;
}

void CAbcast::complete_round(const Value& decision) {
  MsgSet batch;
  const bool ok = decode_msg_set(decision, batch);
  ZDC_ASSERT_MSG(ok, "consensus decided a malformed batch");

  // Lines 9-12: deliver the new messages atomically in canonical order.
  for (auto& [id, body] : batch) {
    if (adelivered_.count(id) != 0) continue;
    adelivered_.insert(id);
    estimate_.erase(id);
    AppMessage m;
    m.id = id;
    m.payload = std::move(body);
    deliver(m);
  }

  firsts_.erase(round_);
  ++round_;
  phase_ = Phase::kIdle;
  prune();
}

void CAbcast::prune() {
  while (!instances_.empty()) {
    auto it = instances_.begin();
    if (it->first + kPruneWindow >= round_) break;
    // Keep the transport accounting of pruned instances.
    metrics_.transport += it->second->cons != nullptr
                              ? it->second->cons->metrics()
                              : it->second->final_metrics;
    instances_.erase(it);
  }
  while (!firsts_.empty() && firsts_.begin()->first < round_) {
    firsts_.erase(firsts_.begin());
  }
}

void CAbcast::finalize_metrics() {
  for (auto& [k, inst] : instances_) {
    if (inst->cons == nullptr) continue;
    metrics_.transport += inst->cons->metrics();
    inst->final_metrics = inst->cons->metrics();
    inst->cons.reset();  // flush only at end of run; instances become inert
  }
}

std::unique_ptr<CAbcast> make_c_abcast_l(ProcessId self, GroupParams group,
                                         AbcastHost& host,
                                         const fd::OmegaView& omega) {
  const fd::OmegaView* omega_ptr = &omega;
  consensus::ConsensusFactory factory =
      [omega_ptr](ProcessId s, GroupParams g, consensus::ConsensusHost& h) {
        return std::make_unique<consensus::LConsensus>(s, g, h, *omega_ptr);
      };
  return std::make_unique<CAbcast>(self, group, host, std::move(factory),
                                   "C-Abcast/L-Consensus");
}

std::unique_ptr<CAbcast> make_c_abcast_p(ProcessId self, GroupParams group,
                                         AbcastHost& host,
                                         const fd::SuspectView& suspects) {
  const fd::SuspectView* suspects_ptr = &suspects;
  consensus::ConsensusFactory factory =
      [suspects_ptr](ProcessId s, GroupParams g, consensus::ConsensusHost& h) {
        return std::make_unique<consensus::PConsensus>(s, g, h, *suspects_ptr);
      };
  return std::make_unique<CAbcast>(self, group, host, std::move(factory),
                                   "C-Abcast/P-Consensus");
}

std::unique_ptr<CAbcast> make_wabcast(ProcessId self, GroupParams group,
                                      AbcastHost& host) {
  consensus::ConsensusFactory factory = [](ProcessId s, GroupParams g,
                                           consensus::ConsensusHost& h) {
    return std::make_unique<consensus::WabConsensus>(s, g, h);
  };
  return std::make_unique<CAbcast>(self, group, host, std::move(factory),
                                   "WABCast");
}

}  // namespace zdc::abcast
