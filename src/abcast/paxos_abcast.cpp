#include "abcast/paxos_abcast.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/log.h"

namespace zdc::abcast {

PaxosAbcast::PaxosAbcast(ProcessId self, GroupParams group, AbcastHost& host,
                         const fd::OmegaView& omega)
    : AtomicBroadcast(self, group, host), omega_(omega) {
  ZDC_ASSERT_MSG(group.majority_resilient(), "Paxos requires f < n/2");
  leading_ = omega_.leader() == self_;
  if (leading_) become_leader();
}

PaxosAbcast::Ballot PaxosAbcast::next_owned_ballot(Ballot floor) const {
  const Ballot n = group_.n;
  const Ballot base = (floor / n) * n + self_;
  return base >= floor ? base : base + n;
}

void PaxosAbcast::submit(AppMessage m) {
  unacked_.emplace(m.id, m.payload);

  common::Encoder enc;
  enc.put_u8(kClientTag);
  enc.put_u32(m.id.sender);
  enc.put_u64(m.id.seq);
  enc.put_string(m.payload);

  const ProcessId leader = omega_.leader();
  if (leader == self_) {
    common::Decoder dec(enc.bytes());
    dec.get_u8();
    handle_client(self_, dec);
  } else if (leader != kNoProcess) {
    ++metrics_.transport.messages_sent;
    metrics_.transport.bytes_sent += enc.size();
    host_.send(leader, enc.take());
  }
  // leader == kNoProcess: the message stays in unacked_ and is sent on the
  // next failure-detector change.
}

void PaxosAbcast::on_message(ProcessId from, std::string_view bytes) {
  common::Decoder dec(bytes);
  const std::uint8_t tag = dec.get_u8();
  if (!dec.ok()) return;
  switch (tag) {
    case kClientTag: handle_client(from, dec); break;
    case kP1aTag: handle_p1a(from, dec); break;
    case kP1bTag: handle_p1b(from, dec); break;
    case kP2aTag: handle_p2a(from, dec); break;
    case kP2bTag: handle_p2b(from, dec); break;
    case kNackTag: handle_nack(from, dec); break;
    default: break;  // unknown tag: drop
  }
}

void PaxosAbcast::on_fd_change() {
  const ProcessId leader = omega_.leader();
  const bool now_leading = leader == self_;
  if (now_leading && !leading_) {
    leading_ = true;
    become_leader();
  } else if (!now_leading) {
    leading_ = false;
    established_ = false;
  }
  // Client side: whatever the change was, re-route undelivered messages to
  // the (possibly new) leader. Duplicates are filtered at delivery.
  resend_unacked();
}

void PaxosAbcast::resend_unacked() {
  const ProcessId leader = omega_.leader();
  if (leader == kNoProcess) return;
  for (const auto& [id, payload] : unacked_) {
    common::Encoder enc;
    enc.put_u8(kClientTag);
    enc.put_u32(id.sender);
    enc.put_u64(id.seq);
    enc.put_string(payload);
    if (leader == self_) {
      common::Decoder dec(enc.bytes());
      dec.get_u8();
      handle_client(self_, dec);
    } else {
      ++metrics_.transport.messages_sent;
      metrics_.transport.bytes_sent += enc.size();
      host_.send(leader, enc.take());
    }
  }
}

void PaxosAbcast::become_leader() {
  establish_ballot(next_owned_ballot(std::max(max_ballot_seen_, promised_)));
}

void PaxosAbcast::establish_ballot(Ballot b) {
  ZDC_ASSERT(ballot_owner(b) == self_);
  current_ballot_ = b;
  established_ = false;
  p1b_replies_.clear();
  inflight_.clear();  // slots of a dead ballot never free the pipeline
  if (b > max_ballot_seen_) max_ballot_seen_ = b;
  if (b == 0) {
    // Globally lowest ballot: phase 1 is a no-op (nothing can have been
    // accepted below it). The initial leader p0 starts sequencing instantly.
    on_established();
    return;
  }
  common::Encoder enc;
  enc.put_u8(kP1aTag);
  enc.put_u64(b);
  enc.put_u64(next_deliver_);  // low slot: everything below is delivered here
  metrics_.transport.messages_sent += group_.n;
  metrics_.transport.bytes_sent += enc.size() * group_.n;
  host_.broadcast(enc.take());
}

void PaxosAbcast::on_established() {
  established_ = true;
  flush_pending();
}

void PaxosAbcast::flush_pending() {
  if (!leading_ || !established_) return;
  // Pipeline cap: with the window full, pending messages wait and batch into
  // the next freed slot (learn() re-invokes this). Without a cap the legacy
  // path proposes immediately — one slot per client message under load.
  if (pipeline_window_ != 0 && inflight_.size() >= pipeline_window_) return;
  MsgSet batch;
  for (const auto& [id, payload] : pending_) {
    if (adelivered_.count(id) == 0) batch.emplace(id, payload);
  }
  pending_.clear();
  if (batch.empty()) return;
  ++proposed_slots_;
  propose_slot(next_slot_++, encode_msg_set(batch));
}

void PaxosAbcast::propose_slot(Slot slot, const Value& batch) {
  inflight_.insert(slot);
  common::Encoder enc;
  enc.put_u8(kP2aTag);
  enc.put_u64(current_ballot_);
  enc.put_u64(slot);
  enc.put_string(batch);
  metrics_.transport.messages_sent += group_.n;
  metrics_.transport.bytes_sent += enc.size() * group_.n;
  host_.broadcast(enc.take());
}

void PaxosAbcast::handle_client(ProcessId from, common::Decoder& dec) {
  (void)from;
  MsgId id;
  id.sender = dec.get_u32();
  id.seq = dec.get_u64();
  std::string payload = dec.get_string();
  if (!dec.done()) return;
  if (adelivered_.count(id) != 0) return;  // already ordered
  pending_.emplace(id, std::move(payload));
  flush_pending();
}

void PaxosAbcast::handle_p1a(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const Slot low = dec.get_u64();
  if (!dec.done()) return;
  if (b > max_ballot_seen_) max_ballot_seen_ = b;
  if (b >= promised_) {
    promised_ = b;
    common::Encoder enc;
    enc.put_u8(kP1bTag);
    enc.put_u64(b);
    std::uint32_t count = 0;
    for (const auto& [slot, acc] : accepted_) {
      if (slot >= low) ++count;
    }
    enc.put_u32(count);
    for (const auto& [slot, acc] : accepted_) {
      if (slot < low) continue;
      enc.put_u64(slot);
      enc.put_u64(acc.ballot);
      enc.put_string(acc.value);
    }
    ++metrics_.transport.messages_sent;
    metrics_.transport.bytes_sent += enc.size();
    host_.send(from, enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    ++metrics_.transport.messages_sent;
    metrics_.transport.bytes_sent += enc.size();
    host_.send(from, enc.take());
  }
}

void PaxosAbcast::handle_p1b(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const std::uint32_t count = dec.get_u32();
  P1bInfo info;
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    const Slot slot = dec.get_u64();
    Accepted acc;
    acc.ballot = dec.get_u64();
    acc.value = dec.get_string();
    if (dec.ok()) info.accepted.emplace(slot, std::move(acc));
  }
  if (!dec.done()) return;
  if (!leading_ || established_ || b != current_ballot_) return;
  p1b_replies_.emplace(from, std::move(info));
  if (p1b_replies_.size() < quorum()) return;

  // Re-propose, per slot, the value accepted under the highest ballot; fill
  // gaps below the highest seen slot with no-op batches so delivery can
  // advance past them.
  std::map<Slot, Accepted> best;
  for (const auto& [p, reply] : p1b_replies_) {
    for (const auto& [slot, acc] : reply.accepted) {
      auto it = best.find(slot);
      if (it == best.end() || acc.ballot > it->second.ballot) {
        best[slot] = acc;
      }
    }
  }
  Slot max_slot = next_deliver_ == 0 ? 0 : next_deliver_ - 1;
  for (const auto& [slot, acc] : best) max_slot = std::max(max_slot, slot);
  next_slot_ = std::max(next_slot_, max_slot + 1);

  const std::string noop = encode_msg_set({});
  for (Slot slot = next_deliver_; slot <= max_slot; ++slot) {
    if (decided_.count(slot) != 0) continue;
    const auto it = best.find(slot);
    propose_slot(slot, it != best.end() ? it->second.value : noop);
  }
  on_established();
}

void PaxosAbcast::handle_p2a(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const Slot slot = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done() || slot == 0) return;
  if (b > max_ballot_seen_) max_ballot_seen_ = b;
  if (b >= promised_) {
    promised_ = b;
    auto& acc = accepted_[slot];
    acc.ballot = b;
    acc.value = std::move(v);
    common::Encoder enc;
    enc.put_u8(kP2bTag);
    enc.put_u64(b);
    enc.put_u64(slot);
    enc.put_string(acc.value);
    metrics_.transport.messages_sent += group_.n;
    metrics_.transport.bytes_sent += enc.size() * group_.n;
    host_.broadcast(enc.take());
  } else {
    common::Encoder enc;
    enc.put_u8(kNackTag);
    enc.put_u64(b);
    enc.put_u64(promised_);
    ++metrics_.transport.messages_sent;
    metrics_.transport.bytes_sent += enc.size();
    host_.send(from, enc.take());
  }
}

void PaxosAbcast::handle_p2b(ProcessId from, common::Decoder& dec) {
  const Ballot b = dec.get_u64();
  const Slot slot = dec.get_u64();
  Value v = dec.get_string();
  if (!dec.done() || slot == 0) return;
  if (b > max_ballot_seen_) max_ballot_seen_ = b;
  // Slots below next_deliver_ are already delivered (their decided_ entry is
  // gone); late 2b traffic for them must not resurrect the slot.
  if (slot < next_deliver_ || decided_.count(slot) != 0) return;
  auto& votes = p2b_votes_[slot][b];
  votes.insert(from);
  if (votes.size() >= quorum()) learn(slot, v);
}

void PaxosAbcast::learn(Slot slot, const Value& batch) {
  const auto [it, inserted] = decided_.emplace(slot, batch);
  if (!inserted) return;
  p2b_votes_.erase(slot);
  if (leading_ && slot >= next_slot_) next_slot_ = slot + 1;
  try_deliver();
  // A decided slot frees a pipeline seat; drain whatever batched meanwhile.
  if (inflight_.erase(slot) != 0) flush_pending();
}

void PaxosAbcast::try_deliver() {
  for (auto it = decided_.find(next_deliver_); it != decided_.end();
       it = decided_.find(next_deliver_)) {
    MsgSet batch;
    const bool ok = decode_msg_set(it->second, batch);
    ZDC_ASSERT_MSG(ok, "decided slot holds a malformed batch");
    for (auto& [id, payload] : batch) {
      if (!adelivered_.insert(id).second) continue;  // duplicate: Integrity
      unacked_.erase(id);
      pending_.erase(id);
      AppMessage m;
      m.id = id;
      m.payload = std::move(payload);
      deliver(m);
    }
    decided_.erase(it);
    ++next_deliver_;
  }
}

void PaxosAbcast::handle_nack(ProcessId from, common::Decoder& dec) {
  (void)from;
  const Ballot b = dec.get_u64();
  const Ballot promised = dec.get_u64();
  if (!dec.done()) return;
  if (promised > max_ballot_seen_) max_ballot_seen_ = promised;
  if (leading_ && b == current_ballot_) {
    establish_ballot(next_owned_ballot(promised + 1));
  }
}

}  // namespace zdc::abcast
