// Consolidated batching knobs for the abcast stacks — the ONLY way to set
// them. Run configs (sim AbcastRunConfig, the runtime cluster config and the
// shared zdc::RunOptions surface) carry a single `batching` member, and
// configure_batching() writes the protocol internals as a friend; the old
// per-protocol setters (PaxosAbcast::set_pipeline_window,
// CAbcast::set_max_batch) are gone. Defaults reproduce the legacy (unbatched)
// behaviour byte-for-byte: the golden-trace fingerprints are pinned at these
// defaults.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zdc::abcast {

class AtomicBroadcast;

struct BatchingOptions {
  /// Leader pipeline cap for the Paxos-Abcast stack: at most this many
  /// proposed-but-undecided slots; surplus client messages batch into the
  /// next freed slot. 0 = legacy unlimited (one slot per message under load).
  std::uint32_t paxos_pipeline_window = 0;
  /// Per-round batch cap for the C-Abcast stacks: at most this many messages
  /// w-broadcast (and hence ordered) per round. 0 = whole estimate per round
  /// (the paper's algorithm).
  std::size_t c_abcast_max_batch = 0;

  [[nodiscard]] bool is_default() const {
    return paxos_pipeline_window == 0 && c_abcast_max_batch == 0;
  }
};

/// Applies whichever knob matches the protocol's concrete type; options for
/// other stacks are ignored (a C-Abcast run config may carry a Paxos window
/// and vice versa — harnesses pass one BatchingOptions to every protocol).
void configure_batching(AtomicBroadcast& protocol, const BatchingOptions& opts);

}  // namespace zdc::abcast
