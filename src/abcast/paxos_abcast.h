// Paxos atomic broadcast — the Multi-Paxos sequencer baseline of Table 1 and
// Figure 3.
//
// Every process forwards its a-broadcast messages to the Ω leader (1δ); the
// leader batches pending messages into numbered slots and runs phase 2 for
// each (2a: leader → acceptors, 1δ; 2b: acceptors → all learners, 1δ), giving
// the 3δ end-to-end latency and n² + n + 1 messages per a-broadcast of
// Table 1. Ballot 0 (owned by p0) needs no phase 1, so a stable run led by p0
// has zero establishment cost; any other leader first establishes its ballot
// with a slot-range phase 1, re-proposes the values it learned, fills gaps
// with no-op batches and only then appends new batches.
//
// Resilience f < n/2 (majority quorums) — the trade against the f < n/3 of
// the one-step protocols the paper highlights.
//
// Liveness plumbing without timers (channels are reliable): explicit NACKs
// carry the promised ballot so a live leader retries with a higher owned
// ballot, and clients re-send their undelivered messages whenever Ω changes.
// Delivery dedupes by message id, so retransmission duplicates are harmless
// (Integrity).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "abcast/abcast.h"
#include "fd/failure_detector.h"

namespace zdc::abcast {

struct BatchingOptions;
void configure_batching(AtomicBroadcast& protocol, const BatchingOptions& opts);

class PaxosAbcast final : public AtomicBroadcast {
 public:
  PaxosAbcast(ProcessId self, GroupParams group, AbcastHost& host,
              const fd::OmegaView& omega);

  void on_message(ProcessId from, std::string_view bytes) override;
  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return "Paxos-Abcast"; }

  /// Next slot to a-deliver (for tests).
  [[nodiscard]] std::uint64_t next_deliver_slot() const { return next_deliver_; }

  /// Slots this leader opened with fresh client batches (for tests/benches:
  /// message_count / proposed_slots is the achieved batching factor).
  [[nodiscard]] std::uint64_t proposed_slots() const { return proposed_slots_; }

  /// The pipeline window is configured exclusively through
  /// BatchingOptions::paxos_pipeline_window via abcast::configure_batching
  /// (see abcast/batching.h for the knob's semantics).
  friend void configure_batching(AtomicBroadcast& protocol,
                                 const BatchingOptions& opts);

 protected:
  void submit(AppMessage m) override;

 private:
  using Ballot = std::uint64_t;
  using Slot = std::uint64_t;
  static constexpr Ballot kNoBallot = ~Ballot{0};

  static constexpr std::uint8_t kClientTag = 1;
  static constexpr std::uint8_t kP1aTag = 2;
  static constexpr std::uint8_t kP1bTag = 3;
  static constexpr std::uint8_t kP2aTag = 4;
  static constexpr std::uint8_t kP2bTag = 5;
  static constexpr std::uint8_t kNackTag = 6;

  [[nodiscard]] ProcessId ballot_owner(Ballot b) const {
    return static_cast<ProcessId>(b % group_.n);
  }
  [[nodiscard]] Ballot next_owned_ballot(Ballot floor) const;
  [[nodiscard]] std::uint32_t quorum() const { return group_.majority(); }

  // --- leader side ---
  void become_leader();
  void establish_ballot(Ballot b);
  void on_established();
  void flush_pending();
  void propose_slot(Slot slot, const Value& batch);

  // --- message handlers ---
  void handle_client(ProcessId from, common::Decoder& dec);
  void handle_p1a(ProcessId from, common::Decoder& dec);
  void handle_p1b(ProcessId from, common::Decoder& dec);
  void handle_p2a(ProcessId from, common::Decoder& dec);
  void handle_p2b(ProcessId from, common::Decoder& dec);
  void handle_nack(ProcessId from, common::Decoder& dec);

  void learn(Slot slot, const Value& batch);
  void try_deliver();
  void resend_unacked();

  const fd::OmegaView& omega_;

  // Client state: own messages not yet a-delivered (resent on leader change).
  std::map<MsgId, std::string> unacked_;

  // Acceptor state: one promised ballot for all slots (Multi-Paxos).
  Ballot promised_ = 0;
  struct Accepted {
    Ballot ballot = 0;
    Value value;
  };
  std::map<Slot, Accepted> accepted_;

  // Leader state.
  bool leading_ = false;
  bool established_ = false;
  Ballot current_ballot_ = kNoBallot;
  Slot next_slot_ = 1;
  MsgSet pending_;  ///< client messages awaiting a slot
  /// Pipeline cap (0 = unlimited): at most this many proposed-but-undecided
  /// slots; surplus client messages accumulate in pending_ and ride the next
  /// freed slot as one batch — the load-adaptive batching the paper's Fast
  /// Paxos lineage leans on at high throughput. Set via configure_batching.
  std::uint32_t pipeline_window_ = 0;
  /// Slots proposed under the current ballot and not yet learned.
  std::set<Slot> inflight_;
  std::uint64_t proposed_slots_ = 0;
  struct P1bInfo {
    std::map<Slot, Accepted> accepted;
  };
  std::map<ProcessId, P1bInfo> p1b_replies_;

  // Learner state.
  std::map<Slot, std::map<Ballot, std::set<ProcessId>>> p2b_votes_;
  std::map<Slot, Value> decided_;
  Slot next_deliver_ = 1;
  std::set<MsgId> adelivered_;

  Ballot max_ballot_seen_ = 0;
};

}  // namespace zdc::abcast
