#include "abcast/abcast.h"

namespace zdc::abcast {

std::string encode_msg_set(const MsgSet& set) {
  // Size the frame exactly up front: 4 (count) + per message 4 (sender) +
  // 8 (seq) + 4 (length) + payload. One allocation per batch, not one per
  // append — this is the hot encode path of every consensus proposal.
  std::size_t bytes = 4;
  for (const auto& [id, payload] : set) bytes += 16 + payload.size();
  common::Encoder enc(bytes);
  enc.put_u32(static_cast<std::uint32_t>(set.size()));
  for (const auto& [id, payload] : set) {  // std::map iterates in MsgId order
    enc.put_u32(id.sender);
    enc.put_u64(id.seq);
    enc.put_string(payload);
  }
  return enc.take();
}

bool decode_msg_set(std::string_view bytes, MsgSet& out) {
  out.clear();
  common::Decoder dec(bytes);
  const std::uint32_t count = dec.get_u32();
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    MsgId id;
    id.sender = dec.get_u32();
    id.seq = dec.get_u64();
    std::string payload = dec.get_string();
    if (dec.ok()) out.emplace(id, std::move(payload));
  }
  if (!dec.done()) {
    out.clear();
    return false;
  }
  return true;
}

MsgId AtomicBroadcast::a_broadcast(std::string payload) {
  AppMessage m;
  m.id = MsgId{self_, next_seq_++};
  m.payload = std::move(payload);
  ++metrics_.a_broadcasts;
  const MsgId id = m.id;
  submit(std::move(m));
  return id;
}

void AtomicBroadcast::on_w_deliver(InstanceId k, ProcessId origin,
                                   const std::string& payload) {
  (void)k;
  (void)origin;
  (void)payload;  // protocols that do not use the oracle ignore deliveries
}

}  // namespace zdc::abcast
