#include "abcast/abcast.h"

namespace zdc::abcast {

std::string encode_msg_set(const MsgSet& set) {
  common::Encoder enc;
  enc.put_u32(static_cast<std::uint32_t>(set.size()));
  for (const auto& [id, payload] : set) {  // std::map iterates in MsgId order
    enc.put_u32(id.sender);
    enc.put_u64(id.seq);
    enc.put_string(payload);
  }
  return enc.take();
}

bool decode_msg_set(std::string_view bytes, MsgSet& out) {
  out.clear();
  common::Decoder dec(bytes);
  const std::uint32_t count = dec.get_u32();
  for (std::uint32_t i = 0; i < count && dec.ok(); ++i) {
    MsgId id;
    id.sender = dec.get_u32();
    id.seq = dec.get_u64();
    std::string payload = dec.get_string();
    if (dec.ok()) out.emplace(id, std::move(payload));
  }
  if (!dec.done()) {
    out.clear();
    return false;
  }
  return true;
}

MsgId AtomicBroadcast::a_broadcast(std::string payload) {
  AppMessage m;
  m.id = MsgId{self_, next_seq_++};
  m.payload = std::move(payload);
  ++metrics_.a_broadcasts;
  const MsgId id = m.id;
  submit(std::move(m));
  return id;
}

void AtomicBroadcast::on_w_deliver(InstanceId k, ProcessId origin,
                                   const std::string& payload) {
  (void)k;
  (void)origin;
  (void)payload;  // protocols that do not use the oracle ignore deliveries
}

}  // namespace zdc::abcast
