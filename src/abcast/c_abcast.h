// C-Abcast — Algorithm 3 of the paper (Sec. 7).
//
// Reduces atomic broadcast to a sequence of consensus instances (one per
// round k), seeding each instance's proposals through the WAB ordering
// oracle so that, absent collisions, all processes propose the *same* batch
// and the one-step consensus path fires:
//
//   loop:
//     6:  w-broadcast(k, estimate)          — the pending-message batch
//     7:  wait for the first w-delivery of round k → v
//     8:  msgSet ← Consensus(k, v)
//     9-12: a-deliver msgSet − adelivered atomically in canonical order;
//           estimate ← estimate − adelivered
//     13: k ← k+1
//     14: if estimate = ∅: wait until a round-k w-delivery arrives or
//         estimate ≠ ∅                      — don't spin empty rounds
//   line 16 (concurrent): every w-delivered message joins the estimate, so no
//   a-broadcast message is ever lost.
//
// End-to-end latency: 1δ for the oracle + 1 consensus step when the oracle
// output collided nowhere (2δ total), + 1 more consensus step in stable runs
// with collisions (3δ total) — the headline rows of Table 1.
//
// The consensus module is pluggable (ConsensusFactory): L-Consensus and
// P-Consensus give the paper's protocol; WabConsensus gives the WABCast
// baseline; Paxos gives a CT-style reduction for ablations.
//
// Engineering notes (divergences documented in DESIGN.md):
//  * every w-delivered message is merged into the estimate (the paper merges
//    "the second, third, etc."); the proposed one is removed again when it is
//    a-delivered, and keeping it is what makes Validity robust to a process
//    skipping a round via a forwarded decision;
//  * decisions may arrive (via the DECIDE flood) for rounds this process has
//    not reached; they are stored and replayed in order — the catch-up path;
//  * consensus instances older than the current round are pruned; a laggard
//    never needs their PROPs because the round's decision was flooded.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "abcast/abcast.h"
#include "consensus/consensus.h"
#include "fd/failure_detector.h"

namespace zdc::abcast {

struct BatchingOptions;
void configure_batching(AtomicBroadcast& protocol, const BatchingOptions& opts);

class CAbcast final : public AtomicBroadcast {
 public:
  /// `factory` stamps one consensus instance per round; `display_name` keeps
  /// benches readable ("C-Abcast/L", "WABCast", ...).
  CAbcast(ProcessId self, GroupParams group, AbcastHost& host,
          consensus::ConsensusFactory factory, std::string display_name);
  ~CAbcast() override;

  void on_message(ProcessId from, std::string_view bytes) override;
  void on_w_deliver(InstanceId k, ProcessId origin,
                    const std::string& payload) override;
  void on_fd_change() override;

  [[nodiscard]] std::string name() const override { return display_name_; }

  /// Round currently executed (1-based); for tests.
  [[nodiscard]] InstanceId current_round() const { return round_; }

  /// The per-round batch cap is configured exclusively through
  /// BatchingOptions::c_abcast_max_batch via abcast::configure_batching
  /// (see abcast/batching.h for the knob's semantics).
  friend void configure_batching(AtomicBroadcast& protocol,
                                 const BatchingOptions& opts);
  /// Aggregates transport metrics of all live consensus instances into
  /// metrics().transport; live instances become inert afterwards.
  void finalize_metrics() override;

 protected:
  void submit(AppMessage m) override;

 private:
  static constexpr std::uint8_t kConsTag = 1;
  /// Consensus instances this far behind the current round are pruned.
  static constexpr InstanceId kPruneWindow = 4;
  /// Oracle instance-id layout: the high bits carry the C-Abcast round, the
  /// low bits a consensus-internal sub-stage (0 = the round's own
  /// w-broadcast, >0 = WabConsensus recovery stages).
  static constexpr unsigned kStageBits = 20;
  static constexpr InstanceId kStageMask = (InstanceId{1} << kStageBits) - 1;

  struct Instance;
  /// ConsensusHost adapter framing instance traffic as [kConsTag][k][bytes].
  class InstanceHost;

  enum class Phase : std::uint8_t {
    kIdle,       ///< line 14-15: estimate empty, round not started
    kWaitFirst,  ///< line 7: w-broadcast done, awaiting first oracle output
    kDeciding,   ///< line 8: consensus running
  };

  Instance& instance(InstanceId k);
  void on_instance_decided(InstanceId k, const Value& v);
  /// Drives the state machine until it blocks on an external event.
  void step();
  void complete_round(const Value& decision);
  void prune();
  /// Encodes the pending estimate (not-yet-a-delivered messages, capped by
  /// max_batch_) directly into msg-set wire format, skipping the intermediate
  /// MsgSet copy the old batch path built per round. Returns the batch size.
  std::size_t encode_pending(std::string* out) const;

  consensus::ConsensusFactory factory_;
  std::string display_name_;

  InstanceId round_ = 1;
  Phase phase_ = Phase::kIdle;
  bool driving_ = false;  ///< re-entrancy guard for step()
  /// Per-round cap on messages w-broadcast (and hence ordered); 0 = whole
  /// estimate per round (the paper's algorithm). Excess messages stay in the
  /// estimate and ride later rounds — a batching-vs-latency design knob
  /// benched in bench_ablation_batch. Set via configure_batching.
  std::size_t max_batch_ = 0;

  MsgSet estimate_;
  std::set<MsgId> adelivered_;
  /// First w-delivered oracle value per instance (the consensus proposal).
  std::map<InstanceId, Value> firsts_;
  std::map<InstanceId, std::unique_ptr<Instance>> instances_;
};

/// The paper's protocol stacks, by name.
std::unique_ptr<CAbcast> make_c_abcast_l(ProcessId self, GroupParams group,
                                         AbcastHost& host,
                                         const fd::OmegaView& omega);
std::unique_ptr<CAbcast> make_c_abcast_p(ProcessId self, GroupParams group,
                                         AbcastHost& host,
                                         const fd::SuspectView& suspects);
/// WABCast baseline: the same skeleton with the oracle-driven WabConsensus.
std::unique_ptr<CAbcast> make_wabcast(ProcessId self, GroupParams group,
                                      AbcastHost& host);

}  // namespace zdc::abcast
