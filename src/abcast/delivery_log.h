// Retention buffer of a-delivered commands, kept so peers can catch a
// restarted or lagging replica up by resending decided instances
// (recovery::CatchupService pulls from it over Channel::kCatchup).
//
// GC follows lightning-style commit tracking: every replica periodically
// broadcasts its applied watermark, and entries every replica has
// acknowledged are dropped — they can never be needed again over the entry
// path. A retention cap bounds memory regardless of acks (a crashed replica
// acknowledges nothing forever); entries forced out by the cap are exactly
// the case the snapshot-transfer fallback covers, so capping is safe (see
// docs/RECOVERY.md for the safety argument).
//
// Indices are the 1-based positions in the a-delivery total order, aligned
// with recovery::DurableRsm::applied(): entry i is the i-th command the
// owning replica applied. Not internally synchronized — owned by one
// replica and driven from its worker thread, like the protocol objects.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"

namespace zdc::abcast {

class DeliveryLog {
 public:
  struct Config {
    /// Hard bound on retained entries; 0 = unbounded (acks alone GC).
    std::uint64_t max_retained = 1024;
  };

  explicit DeliveryLog(std::uint32_t n) : DeliveryLog(n, Config()) {}
  DeliveryLog(std::uint32_t n, Config cfg);

  /// Appends the next command in the delivery order; returns its index.
  std::uint64_t append(std::string command);

  /// Restarts the sequence at `next_index` with an empty window (a rebooted
  /// replica resumes appending right after its recovered prefix; everything
  /// older is only reachable via a peer's log or snapshot).
  void reset_to(std::uint64_t next_index);

  /// Records that process p has applied everything up to `applied`
  /// (watermarks only move forward). Call gc() afterwards to act on it.
  void ack(ProcessId p, std::uint64_t applied);

  /// Drops entries no longer needed: everything all replicas acknowledged,
  /// plus the oldest entries beyond the retention cap. Returns the number
  /// dropped.
  std::uint64_t gc();

  [[nodiscard]] std::uint64_t min_acked() const;
  [[nodiscard]] std::uint64_t acked(ProcessId p) const { return acked_[p]; }

  /// Oldest retained index; equals next() when the window is empty.
  [[nodiscard]] std::uint64_t first() const { return first_; }
  /// Index the next append receives (== owner's applied + 1).
  [[nodiscard]] std::uint64_t next() const { return next_; }
  [[nodiscard]] std::uint64_t retained() const { return next_ - first_; }

  /// The command at `index`, or nullptr if outside the retained window.
  [[nodiscard]] const std::string* entry(std::uint64_t index) const;

 private:
  const Config cfg_;
  std::deque<std::string> entries_;
  std::uint64_t first_ = 1;  ///< index of entries_.front()
  std::uint64_t next_ = 1;   ///< index the next append receives
  std::vector<std::uint64_t> acked_;
};

}  // namespace zdc::abcast
