#include "recovery/durable_rsm.h"

#include <map>
#include <utility>

#include "common/assert.h"
#include "common/codec.h"

namespace zdc::recovery {

namespace {

constexpr char kStateKey[] = "rsm/state";

std::string slot_key(std::uint64_t slot) {
  return "rsm/log/" + std::to_string(slot);
}

}  // namespace

DurableRsm::DurableRsm(std::unique_ptr<core::StateMachine> machine,
                       common::StableStorage* storage, Config cfg)
    : cfg_(cfg), machine_(std::move(machine)), storage_(storage) {
  ZDC_ASSERT(machine_ != nullptr);
  ZDC_ASSERT(cfg_.log_window > 0);
  ZDC_ASSERT_MSG(cfg_.snapshot_every == 0 ||
                     cfg_.log_window >= cfg_.snapshot_every,
                 "ring must span at least one checkpoint interval");
}

bool DurableRsm::recover() {
  if (storage_ == nullptr) return true;
  std::uint64_t applied = 0;
  if (const auto image = storage_->get(kStateKey)) {
    common::Decoder dec(*image);
    const std::uint64_t index = dec.get_u64();
    const std::string state = dec.get_string();
    if (!dec.done()) return false;
    if (!machine_->restore(state)) return false;
    applied = index;
  }
  // Collect ring records newer than the checkpoint, then replay the
  // contiguous run: a gap means the ring wrapped past an unsynced tail and
  // everything beyond it is unreachable (and was never acknowledged).
  std::map<std::uint64_t, std::string> pending;
  for (std::uint64_t slot = 0; slot < cfg_.log_window; ++slot) {
    const auto record = storage_->get(slot_key(slot));
    if (!record) continue;
    common::Decoder dec(*record);
    const std::uint64_t index = dec.get_u64();
    std::string command = dec.get_string();
    if (!dec.done()) continue;  // torn slot: at most the in-flight write
    if (index > applied) pending.emplace(index, std::move(command));
  }
  while (true) {
    const auto it = pending.find(applied + 1);
    if (it == pending.end()) break;
    static_cast<void>(machine_->apply(it->second));
    ++applied;
  }
  applied_.store(applied, std::memory_order_release);
  return true;
}

std::string DurableRsm::apply(std::uint64_t index, const std::string& command) {
  ZDC_ASSERT_MSG(index == applied() + 1, "applies must be contiguous");
  if (storage_ != nullptr) {
    // Write-ahead: the record is durable before the machine moves. A crash
    // in between replays it on recovery; a crash before the sync loses at
    // most this in-flight command (which was never reported applied).
    common::Encoder enc;
    enc.put_u64(index);
    enc.put_string(command);
    storage_->put_nosync(slot_key(index % cfg_.log_window), enc.take());
    storage_->sync();
  }
  std::string result = machine_->apply(command);
  applied_.store(index, std::memory_order_release);
  if (storage_ != nullptr && cfg_.snapshot_every > 0 &&
      index % cfg_.snapshot_every == 0) {
    checkpoint(index);
  }
  return result;
}

bool DurableRsm::install_snapshot(std::uint64_t index,
                                  const std::string& state) {
  if (index <= applied()) return true;  // stale: already past it
  if (!machine_->restore(state)) return false;
  applied_.store(index, std::memory_order_release);
  if (storage_ != nullptr) checkpoint(index);
  return true;
}

void DurableRsm::checkpoint(std::uint64_t index) {
  common::Encoder enc;
  enc.put_u64(index);
  enc.put_string(machine_->serialize());
  storage_->put(kStateKey, enc.take());
}

}  // namespace zdc::recovery
