#include "recovery/replica_group.h"

#include <utility>

#include "common/assert.h"

namespace zdc::recovery {

ReplicaGroup::ReplicaGroup(const zdc::RunOptions& opts,
                           MachineFactory make_machine, Config cfg)
    : n_(opts.group.n), cfg_(std::move(cfg)),
      make_machine_(std::move(make_machine)) {
  ZDC_ASSERT(make_machine_ != nullptr);
  auto cluster_cfg = runtime::RuntimeCluster::Config::from_options(opts);
  cluster_cfg.kind = cfg_.kind;
  cluster_ = std::make_unique<runtime::RuntimeCluster>(
      std::move(cluster_cfg),
      [this](ProcessId p, const abcast::AppMessage& m) {
        on_deliver(p, m.payload);
      });
  std::vector<std::shared_ptr<Replica>> built;
  built.reserve(n_);
  for (ProcessId p = 0; p < n_; ++p) {
    built.push_back(build_replica(p, cluster_->storage(p)));
  }
  {
    common::MutexLock lock(mu_);
    replicas_ = std::move(built);
  }
  for (ProcessId p = 0; p < n_; ++p) {
    cluster_->node(p).set_catchup_handler(
        [this, p](const runtime::Delivery& d) {
          const std::shared_ptr<Replica> r = replica(p);
          if (r != nullptr) r->catchup->on_message(d.from, d.bytes);
        });
  }
}

ReplicaGroup::~ReplicaGroup() { shutdown(); }

void ReplicaGroup::start() {
  cluster_->start();
  for (ProcessId p = 0; p < n_; ++p) schedule_ack_beacon(p);
}

void ReplicaGroup::shutdown() { cluster_->shutdown(); }

void ReplicaGroup::submit(ProcessId p, std::string command) {
  cluster_->node(p).a_broadcast(std::move(command));
}

void ReplicaGroup::crash(ProcessId p) { cluster_->crash(p); }

std::uint64_t ReplicaGroup::restart(ProcessId p) {
  ZDC_ASSERT(cluster_->network().crashed(p));
  // Reboot the disk stack first: reopening through the kept factory is the
  // WAL replay (the factory hands back a DurableStableStorage over the same
  // Env the dead incarnation wrote).
  common::StableStorage* storage = cluster_->reopen_storage(p);
  const std::shared_ptr<Replica> fresh = build_replica(p, storage);
  const std::uint64_t recovered = fresh->rsm->applied();
  fresh->recovering.store(true, std::memory_order_release);
  fresh->catchup->start_recovery();
  {
    // Swap before the transport comes back so every handler that fires on
    // the new incarnation sees the new replica.
    common::MutexLock lock(mu_);
    replicas_[p] = fresh;
  }
  cluster_->network().restart(p);
  schedule_ack_beacon(p);
  schedule_recovery_poll(p);
  return recovered;
}

std::uint64_t ReplicaGroup::applied(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r == nullptr ? 0 : r->rsm->applied();
}

bool ReplicaGroup::recovering(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r != nullptr && r->recovering.load(std::memory_order_acquire);
}

bool ReplicaGroup::caught_up(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r != nullptr && r->catchup->caught_up();
}

std::uint64_t ReplicaGroup::snapshots_installed(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r == nullptr ? 0 : r->catchup->snapshots_installed();
}

std::string ReplicaGroup::digest(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  ZDC_ASSERT(r != nullptr);
  return r->rsm->machine().snapshot();
}

core::StateMachine* ReplicaGroup::machine(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r == nullptr ? nullptr : &r->rsm->machine();
}

DurableRsm* ReplicaGroup::rsm(ProcessId p) const {
  const std::shared_ptr<Replica> r = replica(p);
  return r == nullptr ? nullptr : r->rsm.get();
}

std::shared_ptr<ReplicaGroup::Replica> ReplicaGroup::replica(
    ProcessId p) const {
  common::MutexLock lock(mu_);
  return p < replicas_.size() ? replicas_[p] : nullptr;
}

std::shared_ptr<ReplicaGroup::Replica> ReplicaGroup::build_replica(
    ProcessId p, common::StableStorage* storage) {
  auto r = std::make_shared<Replica>();
  r->rsm = std::make_unique<DurableRsm>(make_machine_(p), storage, cfg_.rsm);
  ZDC_ASSERT_MSG(r->rsm->recover(), "corrupt checkpoint on recovery");
  r->log = std::make_unique<abcast::DeliveryLog>(n_, cfg_.retention);
  r->log->reset_to(r->rsm->applied() + 1);
  r->catchup = std::make_unique<CatchupService>(
      p, n_, r->rsm.get(), r->log.get(),
      [this, p](ProcessId to, std::string bytes) {
        cluster_->network().send(runtime::Channel::kCatchup, p, to,
                                 std::move(bytes));
      },
      cfg_.catchup);
  return r;
}

void ReplicaGroup::on_deliver(ProcessId p, const std::string& payload) {
  const std::shared_ptr<Replica> r = replica(p);
  if (r == nullptr) return;
  // A recovering replica's live stream has a hole (everything a-delivered
  // while it was down); the catch-up pull owns its apply sequence instead.
  if (r->recovering.load(std::memory_order_acquire)) return;
  const std::uint64_t index = r->rsm->applied() + 1;
  static_cast<void>(r->rsm->apply(index, payload));
  const std::uint64_t assigned = r->log->append(payload);
  ZDC_ASSERT(assigned == index);
}

void ReplicaGroup::schedule_ack_beacon(ProcessId p) {
  // Self-rescheduling worker-thread timer: dies with the incarnation
  // (schedule() no-ops while crashed; restart() re-arms).
  cluster_->network().schedule(p, cfg_.ack_interval_ms, [this, p] {
    const std::shared_ptr<Replica> r = replica(p);
    if (r != nullptr) r->catchup->announce_ack();
    schedule_ack_beacon(p);
  });
}

void ReplicaGroup::schedule_recovery_poll(ProcessId p) {
  cluster_->network().schedule(p, cfg_.poll_interval_ms, [this, p] {
    const std::shared_ptr<Replica> r = replica(p);
    if (r == nullptr || !r->recovering.load(std::memory_order_acquire)) {
      return;
    }
    r->catchup->poll_once();
    schedule_recovery_poll(p);
  });
}

}  // namespace zdc::recovery
