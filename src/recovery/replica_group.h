// The full durable replicated-state-machine stack on the threaded runtime:
// RuntimeCluster (consensus + atomic broadcast) x DurableRsm (write-ahead
// applies over RunOptions::storage_factory) x DeliveryLog (decided-instance
// retention) x CatchupService (peer recovery over Channel::kCatchup).
//
// One ReplicaGroup is n replicas of one StateMachine. Live replicas apply
// the a-delivery stream through their DurableRsm and retain commands in
// their DeliveryLog; everyone broadcasts applied-watermark acks that drive
// commit-tracking GC. crash(p) kills a replica (transport silence; its
// storage object survives, like a disk). restart(p) is the kill-9 reboot:
// the storage is reopened through the cluster's kept factory (for
// DurableStableStorage that is the WAL replay), a fresh DurableRsm recovers
// the applied prefix, and a CatchupService in recovery mode pulls the rest
// from peers — entries while retained, snapshot transfer after GC. A
// restarted replica is a lame duck: it no longer applies live protocol
// deliveries (its stream has a hole) and instead converges by pulling; once
// the workload quiesces its digest is byte-equal with the live replicas
// (the end-to-end assertion in catchup_test).
//
// Threading: submit/crash/restart/applied/recovering are callable from the
// harness thread; digest()/machine access only once delivery has quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "abcast/delivery_log.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/run_options.h"
#include "recovery/catchup.h"
#include "recovery/durable_rsm.h"
#include "runtime/runtime_node.h"

namespace zdc::recovery {

class ReplicaGroup {
 public:
  /// Builds one replica's (empty) state machine; called n times at
  /// construction and once per restart. Receives the owning replica's id so
  /// layers above (rsm::ServiceGroup) can hang per-replica hooks — state
  /// must NOT depend on it (every replica applies the same stream).
  using MachineFactory =
      std::function<std::unique_ptr<core::StateMachine>(ProcessId)>;

  struct Config {
    runtime::ProtocolKind kind = runtime::ProtocolKind::kCAbcastL;
    DurableRsm::Config rsm;
    abcast::DeliveryLog::Config retention;
    CatchupService::Config catchup;  ///< metrics/now_ms ride here
    double ack_interval_ms = 5.0;    ///< applied-watermark beacon period
    double poll_interval_ms = 5.0;   ///< recovery pull period
  };

  /// `opts.storage_factory` is what makes the stack durable — it flows
  /// through RuntimeCluster::Config::from_options into per-process storages
  /// that survive crash(p) and replay on restart(p).
  ReplicaGroup(const zdc::RunOptions& opts, MachineFactory make_machine)
      : ReplicaGroup(opts, std::move(make_machine), Config()) {}
  ReplicaGroup(const zdc::RunOptions& opts, MachineFactory make_machine,
               Config cfg);
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  void start();
  void shutdown();

  /// Replicates one command via replica p (any thread).
  void submit(ProcessId p, std::string command);

  /// Transport crash: p goes silent. Its storage object survives.
  void crash(ProcessId p);

  /// Kill-9 reboot of p: reopens its storage through the kept factory,
  /// recovers the WAL prefix into a fresh machine, rejoins the transport
  /// and starts catch-up. Returns the recovered applied prefix. Call only
  /// after crash(p) has settled (in-flight handlers drained).
  std::uint64_t restart(ProcessId p);

  [[nodiscard]] std::uint64_t applied(ProcessId p) const;
  [[nodiscard]] bool recovering(ProcessId p) const;
  [[nodiscard]] bool caught_up(ProcessId p) const;
  [[nodiscard]] std::uint64_t snapshots_installed(ProcessId p) const;

  /// Machine digest / full state; only once delivery has quiesced.
  [[nodiscard]] std::string digest(ProcessId p) const;

  /// Replica p's live state machine. Read-only access is safe from p's own
  /// worker thread (where applies happen) or once delivery has quiesced;
  /// the pointer itself is stable until the next restart(p).
  [[nodiscard]] core::StateMachine* machine(ProcessId p) const;

  /// Replica p's applied-index watermark source (same threading contract
  /// as machine(p)); null while p has no incarnation.
  [[nodiscard]] DurableRsm* rsm(ProcessId p) const;

  [[nodiscard]] runtime::RuntimeCluster& cluster() { return *cluster_; }
  [[nodiscard]] std::uint32_t size() const { return n_; }

 private:
  struct Replica {
    std::unique_ptr<DurableRsm> rsm;
    std::unique_ptr<abcast::DeliveryLog> log;
    std::unique_ptr<CatchupService> catchup;
    /// True from restart() on: live deliveries are ignored (the stream has
    /// a hole); CatchupService owns the apply sequence instead.
    std::atomic<bool> recovering{false};
  };

  [[nodiscard]] std::shared_ptr<Replica> replica(ProcessId p) const;
  std::shared_ptr<Replica> build_replica(ProcessId p,
                                         common::StableStorage* storage);
  void on_deliver(ProcessId p, const std::string& payload);
  void schedule_ack_beacon(ProcessId p);
  void schedule_recovery_poll(ProcessId p);

  const std::uint32_t n_;
  const Config cfg_;
  MachineFactory make_machine_;

  mutable common::Mutex mu_;
  /// shared_ptr slots: a worker mid-delivery holds the old incarnation
  /// alive while restart() swaps in the new one.
  std::vector<std::shared_ptr<Replica>> replicas_ ZDC_GUARDED_BY(mu_);

  std::unique_ptr<runtime::RuntimeCluster> cluster_;
};

}  // namespace zdc::recovery
