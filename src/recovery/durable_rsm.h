// Write-ahead durable state machine: the bridge between src/core's
// StateMachine and common::StableStorage (durably: storage::
// DurableStableStorage over its segmented WAL).
//
// Every apply is written ahead — the (index, command) record is staged and
// synced *before* the machine executes it — so a kill -9 between the sync
// and the apply replays the command on recovery instead of losing it.
// Command records live in a fixed ring of storage keys (an apply overwrites
// the slot `index % log_window`; StableStorage has no delete, a ring needs
// none), and every `snapshot_every` applies the full serialized machine
// state is checkpointed under one key, which bounds both recovery work and
// the ring span that ever matters: recovery loads the checkpoint, then
// replays the contiguous run of newer ring records. `log_window >=
// snapshot_every` guarantees no record newer than the checkpoint has been
// overwritten.
//
// Crash model: a crash discards this object; the harness reopens the
// storage (for DurableStableStorage, from the same Env — that is the WAL
// replay) and builds a fresh DurableRsm over it, whose recover() returns
// the applied prefix that survived. A null storage degrades to a plain
// in-memory RSM (recover() finds nothing) — protocols never see the
// difference, exactly like RunOptions::storage_factory elsewhere.
//
// Threading: apply()/recover()/install_snapshot() and machine() belong to
// the owning replica's worker thread; applied() is safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/stable_storage.h"
#include "core/rsm.h"

namespace zdc::recovery {

class DurableRsm {
 public:
  struct Config {
    /// Checkpoint the full serialized state every this many applies.
    std::uint64_t snapshot_every = 64;
    /// Ring slots for write-ahead command records; must be >=
    /// snapshot_every so the post-checkpoint suffix is always intact.
    std::uint64_t log_window = 256;
  };

  /// `storage` may be null (in-memory mode) and must otherwise outlive
  /// this object.
  DurableRsm(std::unique_ptr<core::StateMachine> machine,
             common::StableStorage* storage)
      : DurableRsm(std::move(machine), storage, Config()) {}
  DurableRsm(std::unique_ptr<core::StateMachine> machine,
             common::StableStorage* storage, Config cfg);

  /// Replays the storage into the machine: loads the newest checkpoint,
  /// then applies the contiguous run of newer write-ahead records. Returns
  /// false on a corrupt checkpoint image (recovery fails loudly rather
  /// than inventing state); the applied prefix is then in applied().
  [[nodiscard]] bool recover();

  /// Executes command `index` (must be applied() + 1) with the write-ahead
  /// barrier; returns the machine's result.
  std::string apply(std::uint64_t index, const std::string& command);

  /// Jumps the machine to a peer's serialized state at `index` (snapshot
  /// transfer). Stale installs (index <= applied()) are ignored and
  /// succeed; a malformed image returns false and leaves state untouched.
  [[nodiscard]] bool install_snapshot(std::uint64_t index,
                                      const std::string& state);

  /// Index of the last applied command (0 = nothing applied). Any thread.
  [[nodiscard]] std::uint64_t applied() const {
    return applied_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const core::StateMachine& machine() const { return *machine_; }
  [[nodiscard]] core::StateMachine& machine() { return *machine_; }
  [[nodiscard]] common::StableStorage* storage() { return storage_; }

 private:
  void checkpoint(std::uint64_t index);

  const Config cfg_;
  std::unique_ptr<core::StateMachine> machine_;
  common::StableStorage* storage_;
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace zdc::recovery
