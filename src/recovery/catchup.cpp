#include "recovery/catchup.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/codec.h"

namespace zdc::recovery {

CatchupService::CatchupService(ProcessId self, std::uint32_t n,
                               DurableRsm* rsm, abcast::DeliveryLog* log,
                               SendFn send, Config cfg)
    : self_(self), n_(n), rsm_(rsm), log_(log), send_(std::move(send)),
      cfg_(std::move(cfg)) {
  ZDC_ASSERT(n_ > 0 && self_ < n_);
  ZDC_ASSERT(rsm_ != nullptr && log_ != nullptr && send_ != nullptr);
  next_peer_ = (self_ + 1) % n_;
  if (cfg_.metrics != nullptr) {
    const obs::Labels labels = obs::process_label(self_);
    requests_ctr_ =
        &cfg_.metrics->counter("zdc_catchup_requests_total", labels);
    entries_served_ctr_ =
        &cfg_.metrics->counter("zdc_catchup_entries_served_total", labels);
    entries_applied_ctr_ =
        &cfg_.metrics->counter("zdc_catchup_entries_applied_total", labels);
    snapshots_served_ctr_ =
        &cfg_.metrics->counter("zdc_catchup_snapshots_served_total", labels);
    snapshots_installed_ctr_ = &cfg_.metrics->counter(
        "zdc_catchup_snapshots_installed_total", labels);
    gc_dropped_ctr_ =
        &cfg_.metrics->counter("zdc_catchup_gc_dropped_total", labels);
    latency_hist_ =
        &cfg_.metrics->histogram("zdc_catchup_latency_ms", {}, labels);
  }
}

void CatchupService::on_message(ProcessId from, const std::string& bytes) {
  common::Decoder dec(bytes);
  const std::uint8_t type = dec.get_u8();
  if (!dec.ok()) return;
  switch (type) {
    case kRequest: {
      const std::uint64_t from_index = dec.get_u64();
      if (dec.done()) on_request(from, from_index);
      return;
    }
    case kEntries:
      on_entries(from, bytes);
      return;
    case kSnapshot:
      on_snapshot(from, bytes);
      return;
    case kAck: {
      const std::uint64_t applied = dec.get_u64();
      if (!dec.done()) return;
      log_->ack(from, applied);
      const std::uint64_t dropped = log_->gc();
      if (dropped > 0 && gc_dropped_ctr_ != nullptr) {
        gc_dropped_ctr_->inc(dropped);
      }
      // Acks double as frontier beacons for anyone recovering.
      if (recovering()) {
        note_frontier(applied);
        maybe_record_caught_up();
      }
      return;
    }
    default:
      return;  // unknown type: a newer peer; ignore
  }
}

void CatchupService::on_request(ProcessId from, std::uint64_t from_index) {
  if (requests_ctr_ != nullptr) requests_ctr_->inc();
  const std::uint64_t applied = rsm_->applied();
  if (from_index > applied || log_->first() <= from_index) {
    // Entry path: what was asked for is still retained (or the requester is
    // already at/above our frontier — an empty reply still carries it).
    common::Encoder enc;
    enc.put_u8(kEntries);
    enc.put_u64(applied);
    enc.put_u64(from_index);
    std::uint32_t count = 0;
    const std::uint64_t last =
        std::min(applied, from_index + cfg_.max_entries_per_reply - 1);
    std::vector<const std::string*> chunk;
    for (std::uint64_t i = from_index; i <= last; ++i) {
      const std::string* cmd = log_->entry(i);
      if (cmd == nullptr) break;  // GC raced ahead; ship what we have
      chunk.push_back(cmd);
      ++count;
    }
    enc.put_u32(count);
    for (const std::string* cmd : chunk) enc.put_string(*cmd);
    if (entries_served_ctr_ != nullptr && count > 0) {
      entries_served_ctr_->inc(count);
    }
    send_(from, enc.take());
    return;
  }
  // Snapshot fallback: GC dropped the suffix the requester needs. Ship the
  // whole machine at our applied index; the requester resumes the entry
  // path from there.
  common::Encoder enc;
  enc.put_u8(kSnapshot);
  enc.put_u64(applied);
  enc.put_u64(applied);
  enc.put_string(rsm_->machine().serialize());
  if (snapshots_served_ctr_ != nullptr) snapshots_served_ctr_->inc();
  send_(from, enc.take());
}

void CatchupService::on_entries(ProcessId from, const std::string& bytes) {
  common::Decoder dec(bytes);
  static_cast<void>(dec.get_u8());  // type, already dispatched
  const std::uint64_t peer_applied = dec.get_u64();
  const std::uint64_t first = dec.get_u64();
  const std::uint32_t count = dec.get_u32();
  if (!dec.ok()) return;
  note_frontier(peer_applied);
  bool progressed = false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string command = dec.get_string();
    if (!dec.ok()) return;
    const std::uint64_t index = first + i;
    if (index != rsm_->applied() + 1) continue;  // duplicate or gap
    static_cast<void>(rsm_->apply(index, command));
    const std::uint64_t assigned = log_->append(std::move(command));
    ZDC_ASSERT(assigned == index);
    entries_applied_.fetch_add(1, std::memory_order_relaxed);
    if (entries_applied_ctr_ != nullptr) entries_applied_ctr_->inc();
    progressed = true;
  }
  maybe_record_caught_up();
  // Keep pulling from the same peer while it is ahead and feeding us —
  // chunked transfer without waiting out a poll interval per chunk.
  if (recovering() && progressed && rsm_->applied() < frontier_seen()) {
    request_from(from, rsm_->applied() + 1);
  }
}

void CatchupService::on_snapshot(ProcessId from, const std::string& bytes) {
  common::Decoder dec(bytes);
  static_cast<void>(dec.get_u8());  // type, already dispatched
  const std::uint64_t peer_applied = dec.get_u64();
  const std::uint64_t index = dec.get_u64();
  const std::string state = dec.get_string();
  if (!dec.done()) return;
  note_frontier(peer_applied);
  if (index > rsm_->applied()) {
    if (!rsm_->install_snapshot(index, state)) return;  // corrupt image
    // The pre-snapshot entry range is now unreachable locally; resume the
    // sequence right after the installed state.
    log_->reset_to(index + 1);
    snapshots_installed_.fetch_add(1, std::memory_order_relaxed);
    if (snapshots_installed_ctr_ != nullptr) snapshots_installed_ctr_->inc();
  }
  maybe_record_caught_up();
  if (recovering() && rsm_->applied() < frontier_seen()) {
    request_from(from, rsm_->applied() + 1);
  }
}

void CatchupService::start_recovery() {
  if (recovering_.exchange(true, std::memory_order_acq_rel)) return;
  latency_recorded_ = false;
  recovery_started_ms_ = cfg_.now_ms ? cfg_.now_ms() : 0.0;
}

void CatchupService::poll_once() {
  if (!recovering()) return;
  // Round-robin over peers: a crashed or lagging peer only costs one tick.
  ProcessId peer = next_peer_;
  if (peer == self_) peer = (peer + 1) % n_;
  next_peer_ = (peer + 1) % n_;
  if (peer == self_) return;  // n == 1: nobody to pull from
  request_from(peer, rsm_->applied() + 1);
}

void CatchupService::announce_ack() {
  common::Encoder enc;
  enc.put_u8(kAck);
  enc.put_u64(rsm_->applied());
  const std::string bytes = enc.take();
  for (ProcessId p = 0; p < n_; ++p) send_(p, bytes);
}

void CatchupService::request_from(ProcessId peer, std::uint64_t from_index) {
  common::Encoder enc;
  enc.put_u8(kRequest);
  enc.put_u64(from_index);
  send_(peer, enc.take());
}

void CatchupService::note_frontier(std::uint64_t peer_applied) {
  std::uint64_t seen = frontier_seen_.load(std::memory_order_relaxed);
  while (peer_applied > seen &&
         !frontier_seen_.compare_exchange_weak(seen, peer_applied,
                                               std::memory_order_acq_rel)) {
  }
}

void CatchupService::maybe_record_caught_up() {
  if (!recovering() || latency_recorded_ || !caught_up()) return;
  latency_recorded_ = true;
  if (latency_hist_ != nullptr && cfg_.now_ms) {
    latency_hist_->observe(cfg_.now_ms() - recovery_started_ms_);
  }
}

}  // namespace zdc::recovery
