// Peer catch-up protocol: brings a restarted or lagging replica's DurableRsm
// up to the live frontier over Channel::kCatchup.
//
// Pull-based. The recovering replica repeatedly asks a peer for the decided
// commands from its applied + 1; the peer answers from its DeliveryLog with
// an entry chunk, or — when GC already dropped what was asked for — with a
// full serialized snapshot of its machine (snapshot-plus-log-suffix: the
// requester installs the snapshot, then pulls the remaining suffix as
// entries). Every reply carries the responder's applied frontier, and every
// replica periodically broadcasts its applied watermark as an ack, which is
// both the GC signal for DeliveryLog commit tracking and a frontier beacon
// for anyone recovering.
//
// Wire messages (Channel::kCatchup, reliable):
//   kRequest  u64 from_index
//   kEntries  u64 responder_applied, u64 first, u32 count, count x string
//   kSnapshot u64 responder_applied, u64 index, string state
//   kAck      u64 applied
//
// Threading: on_message/poll_once/announce_ack run on the owning replica's
// worker thread (the harness drives them via transport handlers and
// timers — the service owns no timers itself, so a crashed replica's
// closures die with its queue). recovering()/caught_up()/frontier_seen()
// are safe from any thread.
//
// The latency clock is injected (Config::now_ms): this directory is under
// the determinism lint, and the one legitimate wall-clock consumer — the
// catch-up latency histogram — takes its readings from whatever clock the
// harness provides (nullable; no clock, no histogram samples).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "abcast/delivery_log.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "recovery/durable_rsm.h"

namespace zdc::recovery {

class CatchupService {
 public:
  /// Sends one catch-up datagram to `to` (the harness binds this to
  /// Transport::send on Channel::kCatchup).
  using SendFn = std::function<void(ProcessId to, std::string bytes)>;

  struct Config {
    /// Entry-chunk size per kEntries reply (bounds reply datagrams).
    std::uint32_t max_entries_per_reply = 32;
    obs::MetricsRegistry* metrics = nullptr;
    /// Monotonic milliseconds for the catch-up latency histogram; null
    /// disables latency samples (counters still work).
    std::function<double()> now_ms;
  };

  /// `rsm` and `log` are the owning replica's; both outlive the service.
  CatchupService(ProcessId self, std::uint32_t n, DurableRsm* rsm,
                 abcast::DeliveryLog* log, SendFn send)
      : CatchupService(self, n, rsm, log, std::move(send), Config()) {}
  CatchupService(ProcessId self, std::uint32_t n, DurableRsm* rsm,
                 abcast::DeliveryLog* log, SendFn send, Config cfg);

  /// Feed every Channel::kCatchup delivery here.
  void on_message(ProcessId from, const std::string& bytes);

  /// Enters recovery mode: poll_once() starts pulling. Idempotent.
  void start_recovery();
  [[nodiscard]] bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }
  /// Highest peer frontier seen so far (0 until any peer answered).
  [[nodiscard]] std::uint64_t frontier_seen() const {
    return frontier_seen_.load(std::memory_order_acquire);
  }
  /// Applied has reached every frontier any peer reported. Only meaningful
  /// once frontier_seen() > 0; the live frontier may still advance.
  [[nodiscard]] bool caught_up() const {
    const std::uint64_t frontier = frontier_seen();
    return frontier > 0 && rsm_->applied() >= frontier;
  }

  /// One pull tick: requests entries from the next peer (round-robin).
  /// No-op unless recovering.
  void poll_once();

  /// Broadcasts this replica's applied watermark (to every process,
  /// including self — the loopback ack keeps the own log's watermark row
  /// honest). All replicas do this periodically; it drives GC.
  void announce_ack();

  /// Cross-thread counters for harness assertions.
  [[nodiscard]] std::uint64_t entries_applied() const {
    return entries_applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t snapshots_installed() const {
    return snapshots_installed_.load(std::memory_order_relaxed);
  }

 private:
  enum MsgType : std::uint8_t {
    kRequest = 1,
    kEntries = 2,
    kSnapshot = 3,
    kAck = 4,
  };

  void on_request(ProcessId from, std::uint64_t from_index);
  void on_entries(ProcessId from, const std::string& bytes);
  void on_snapshot(ProcessId from, const std::string& bytes);
  void request_from(ProcessId peer, std::uint64_t from_index);
  void note_frontier(std::uint64_t peer_applied);
  void maybe_record_caught_up();

  const ProcessId self_;
  const std::uint32_t n_;
  DurableRsm* rsm_;
  abcast::DeliveryLog* log_;
  SendFn send_;
  const Config cfg_;

  std::atomic<bool> recovering_{false};
  std::atomic<std::uint64_t> frontier_seen_{0};
  std::atomic<std::uint64_t> entries_applied_{0};
  std::atomic<std::uint64_t> snapshots_installed_{0};
  ProcessId next_peer_ = 0;      ///< round-robin cursor (worker thread)
  double recovery_started_ms_ = 0.0;
  bool latency_recorded_ = false;

  // Pre-registered metric handles; null when metrics are off.
  obs::Counter* requests_ctr_ = nullptr;
  obs::Counter* entries_served_ctr_ = nullptr;
  obs::Counter* entries_applied_ctr_ = nullptr;
  obs::Counter* snapshots_served_ctr_ = nullptr;
  obs::Counter* snapshots_installed_ctr_ = nullptr;
  obs::Counter* gc_dropped_ctr_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace zdc::recovery
