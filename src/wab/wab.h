// Weak Atomic Broadcast (WAB) ordering oracle (paper Sec. 3.4).
//
// A WAB models the spontaneous total order of LAN broadcasts: per instance k,
// each process may w-broadcast a message; every correct process eventually
// w-delivers every message w-broadcast by a correct process (Validity), each
// (k, m) at most once (Uniform Integrity), and for infinitely many instances
// the *first* message w-delivered is the same at every process (Spontaneous
// Order). C-Abcast and WABCast only act on the first message of an instance;
// later deliveries feed their estimates.
#pragma once

#include <functional>
#include <string>

#include "common/types.h"

namespace zdc::wab {

/// Per-process endpoint of the WAB oracle.
class WabOracle {
 public:
  using DeliverFn =
      std::function<void(InstanceId k, ProcessId sender, const std::string& m)>;

  virtual ~WabOracle() = default;

  /// w-broadcast(k, m): best-effort broadcast of m in instance k (including to
  /// the caller itself).
  virtual void w_broadcast(InstanceId k, const std::string& m) = 0;

  /// Installs the w-deliver upcall. Deliveries for an instance arrive in the
  /// oracle's chosen order; the first one carries the spontaneous-order
  /// guarantee described above.
  virtual void set_deliver(DeliverFn fn) = 0;
};

}  // namespace zdc::wab
