// Simulated failure detectors (Ω and ◇P) with scriptable behaviour.
//
// The paper's definitions quantify over *runs* classified by failure-detector
// behaviour (Def. 2: stable runs). A simulated detector lets tests and
// benches construct exactly the run they need:
//
//   kStable        — the FD is perfect and constant from t=0: Ω outputs the
//                    same correct process for the whole run, ◇P suspects
//                    exactly the initially-crashed processes (Def. 2).
//   kCrashTracking — crashes are detected `detection_delay_ms` after they
//                    happen; Ω is the lowest non-suspected process. Models a
//                    well-behaved timeout FD for recovery-run experiments.
//   kScripted      — arbitrary per-process output changes at given times,
//                    including asymmetric and plain wrong outputs; used by the
//                    adversarial safety tests (protocols must stay safe under
//                    *any* FD behaviour).
//
// Each process gets its own OmegaView/SuspectView instance, so outputs may
// legitimately differ across processes (as they do in real systems).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "fd/failure_detector.h"
#include "sim/event_queue.h"

namespace zdc::sim {

enum class FdMode : std::uint8_t { kStable, kCrashTracking, kScripted };

/// One scripted output change: at `time`, process `observer` (or every
/// process if observer == kNoProcess) starts seeing `leader` and `suspected`.
struct FdScriptEvent {
  TimePoint time = 0.0;
  ProcessId observer = kNoProcess;
  ProcessId leader = 0;
  std::vector<ProcessId> suspected;
};

struct FdConfig {
  FdMode mode = FdMode::kStable;
  /// kStable: fixed leader; kNoProcess means lowest initially-correct id.
  ProcessId stable_leader = kNoProcess;
  /// kCrashTracking: how long after a crash every alive process suspects it.
  double detection_delay_ms = 5.0;
  /// kScripted: the full schedule (applied in time order).
  std::vector<FdScriptEvent> script;
};

/// Owns the per-process detector outputs and drives changes through the event
/// queue. The world registers a callback invoked whenever some process's
/// output changed, so protocols can re-evaluate their FD-dependent waits.
class FdSim {
 public:
  /// `on_change(p)` fires after process p's view changed.
  FdSim(FdConfig cfg, std::uint32_t n, EventQueue& events,
        std::function<void(ProcessId)> on_change);
  ~FdSim();  // out of line: ProcessView is incomplete here

  /// Installs the t=0 outputs. `initially_crashed[p]` marks processes that
  /// are dead from the start (stable runs suspect exactly these).
  void initialize(const std::vector<bool>& initially_crashed);

  /// Notifies the detector of a crash at the current time (kCrashTracking
  /// schedules suspicion after the detection delay; other modes ignore it —
  /// a stable run by definition has no mid-run output change).
  void on_crash(ProcessId crashed);

  /// Nemesis hooks, meaningful in kCrashTracking mode only (the other modes
  /// keep their scripted/stable outputs — a stable run stays stable even if
  /// the nemesis misbehaves, which is exactly the indulgence experiments'
  /// point). A paused process goes silent, so a timeout detector *falsely
  /// suspects* it after the detection delay; on resume (heartbeats flowing
  /// again) the suspicion is revoked after the same delay. on_restart marks
  /// a crashed process alive again and likewise revokes its suspicion.
  void on_pause(ProcessId p);
  void on_resume(ProcessId p);
  void on_restart(ProcessId p);

  [[nodiscard]] const fd::OmegaView& omega_view(ProcessId p) const;
  [[nodiscard]] const fd::SuspectView& suspect_view(ProcessId p) const;

 private:
  struct ProcessView;

  void apply(ProcessId observer, ProcessId leader,
             const std::vector<ProcessId>& suspected);
  void suspect_everywhere(ProcessId p);
  void unsuspect_everywhere(ProcessId p);

  FdConfig cfg_;
  std::uint32_t n_;
  EventQueue& events_;
  std::function<void(ProcessId)> on_change_;
  std::vector<std::unique_ptr<ProcessView>> views_;
  std::vector<bool> crashed_;  ///< kCrashTracking bookkeeping
  std::vector<bool> paused_;
  /// Bumped on every pause/resume so in-flight delayed reactions from a
  /// superseded pause state cancel themselves.
  std::vector<std::uint64_t> pause_epoch_;
};

}  // namespace zdc::sim
