#include "sim/lan_model.h"

#include <algorithm>

#include "common/assert.h"

namespace zdc::sim {

TimePoint LanModel::occupy_sender_cpu(ProcessId from, TimePoint now) {
  ZDC_ASSERT(from < cpu_free_.size());
  const TimePoint start = std::max(now, cpu_free_[from]);
  cpu_free_[from] = start + cfg_.cpu_send_ms;
  return cpu_free_[from];
}

TimePoint LanModel::occupy_medium(TimePoint ready, std::size_t payload_bytes) {
  const double bits =
      static_cast<double>(payload_bytes + cfg_.framing_bytes) * 8.0;
  // bandwidth in Mbit/s == bits per microsecond; convert to ms.
  const double tx_ms = bits / (cfg_.bandwidth_mbps * 1000.0);
  const TimePoint start = std::max(ready, medium_free_);
  medium_free_ = start + tx_ms;
  return medium_free_;
}

TimePoint LanModel::arrival_time(TimePoint tx_end) {
  return tx_end + cfg_.base_delay_ms + rng_.exponential(cfg_.jitter_mean_ms);
}

TimePoint LanModel::wab_arrival_time(TimePoint tx_end) {
  TimePoint t = arrival_time(tx_end);
  if (cfg_.wab_extra_jitter_ms > 0.0) {
    t += rng_.uniform(0.0, cfg_.wab_extra_jitter_ms);
  }
  return t;
}

TimePoint LanModel::occupy_receiver_cpu(ProcessId to, TimePoint arrival) {
  ZDC_ASSERT(to < cpu_free_.size());
  const TimePoint start = std::max(arrival, cpu_free_[to]);
  cpu_free_[to] = start + cfg_.cpu_recv_ms;
  return cpu_free_[to];
}

TimePoint LanModel::reliable_link_penalty_ms(ProcessId from, ProcessId to) {
  if (policy_ == nullptr) return 0.0;
  const fault::LinkState link = policy_->link(from, to);
  if (link.clean()) return 0.0;
  TimePoint penalty = link.extra_delay_ms;
  if (link.drop_prob > 0.0 && link.drop_prob < 1.0) {
    // Each lost attempt costs one RTO; the attempt count is geometric.
    while (rng_.chance(link.drop_prob)) penalty += cfg_.reliable_retransmit_ms;
  }
  return penalty;
}

bool LanModel::drop_best_effort(ProcessId from, ProcessId to) {
  if (policy_ == nullptr) return false;
  const fault::LinkState link = policy_->link(from, to);
  if (link.blocked) return true;
  return link.drop_prob > 0.0 && rng_.chance(link.drop_prob);
}

TimePoint LanModel::best_effort_extra_delay_ms(ProcessId from,
                                               ProcessId to) const {
  if (policy_ == nullptr) return 0.0;
  return policy_->link(from, to).extra_delay_ms;
}

}  // namespace zdc::sim
