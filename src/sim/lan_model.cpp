#include "sim/lan_model.h"

#include <algorithm>

#include "common/assert.h"

namespace zdc::sim {

TimePoint LanModel::occupy_sender_cpu(ProcessId from, TimePoint now) {
  ZDC_ASSERT(from < cpu_free_.size());
  const TimePoint start = std::max(now, cpu_free_[from]);
  cpu_free_[from] = start + cfg_.cpu_send_ms;
  return cpu_free_[from];
}

TimePoint LanModel::occupy_medium(TimePoint ready, std::size_t payload_bytes) {
  const double bits =
      static_cast<double>(payload_bytes + cfg_.framing_bytes) * 8.0;
  // bandwidth in Mbit/s == bits per microsecond; convert to ms.
  const double tx_ms = bits / (cfg_.bandwidth_mbps * 1000.0);
  const TimePoint start = std::max(ready, medium_free_);
  medium_free_ = start + tx_ms;
  return medium_free_;
}

TimePoint LanModel::arrival_time(TimePoint tx_end) {
  return tx_end + cfg_.base_delay_ms + rng_.exponential(cfg_.jitter_mean_ms);
}

TimePoint LanModel::wab_arrival_time(TimePoint tx_end) {
  TimePoint t = arrival_time(tx_end);
  if (cfg_.wab_extra_jitter_ms > 0.0) {
    t += rng_.uniform(0.0, cfg_.wab_extra_jitter_ms);
  }
  return t;
}

TimePoint LanModel::occupy_receiver_cpu(ProcessId to, TimePoint arrival) {
  ZDC_ASSERT(to < cpu_free_.size());
  const TimePoint start = std::max(arrival, cpu_free_[to]);
  cpu_free_[to] = start + cfg_.cpu_recv_ms;
  return cpu_free_[to];
}

}  // namespace zdc::sim
