// Atomic-broadcast workload harness: the simulated counterpart of the paper's
// cluster experiment (Sec. 8.1).
//
// A Poisson arrival process a-broadcasts fixed-size messages from uniformly
// random correct processes at a configured aggregate throughput; the harness
// measures the per-message latency ("the shortest delay between
// a-broadcasting m and a-delivering m" — i.e. until the first delivery at any
// process, plus the sender-local variant), checks the four atomic-broadcast
// properties over the complete delivery histories and accounts messages and
// bytes. Figures 2 and 3 are throughput sweeps over this harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abcast/abcast.h"
#include "common/stats.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "fd/failure_detector.h"
#include "sim/consensus_world.h"  // CrashSpec
#include "sim/fd_sim.h"
#include "sim/lan_model.h"
#include "sim/trace.h"

namespace zdc::sim {

/// Inherits the shared group/net/fd/seed block, the consolidated batching
/// knobs and the observability hooks from zdc::RunOptions — see
/// obs/run_options.h for the fluent builder.
struct AbcastRunConfig : RunOptions {
  double throughput_per_s = 100.0;  ///< aggregate a-broadcast rate
  std::uint32_t message_count = 400;
  std::uint32_t payload_bytes = 64;
  /// Processes that originate a-broadcasts (empty = all alive processes).
  /// The paper's Paxos experiment keeps clients off the leader: its n=3
  /// group serves a workload generated elsewhere, so every message pays the
  /// client→leader hop (Table 1's 3δ).
  std::vector<ProcessId> workload_senders;
  /// Fraction of earliest messages excluded from the latency statistics.
  double warmup_fraction = 0.1;

  std::vector<CrashSpec> crashes;
  /// Scripted nemesis actions (src/fault/): partitions/link faults/pauses and
  /// crashes. Restart actions are rejected — this world is crash-stop (the
  /// crash-recovery abcast path lives in the threaded runtime).
  fault::FaultPlan fault_plan;
  TimePoint time_limit_ms = 300'000.0;
  std::uint64_t event_limit = 100'000'000;
};

struct AbcastRunResult {
  /// Latency to the first a-delivery anywhere (the paper's metric).
  common::Sampler latency_ms;
  /// Latency to the a-delivery at the broadcasting process.
  common::Sampler sender_latency_ms;

  bool total_order_ok = true;  ///< pairwise prefix-consistent histories
  bool agreement_ok = true;    ///< every correct process delivered everything
  bool integrity_ok = true;    ///< no duplicate or spurious delivery
  std::uint64_t undelivered = 0;  ///< expected messages still missing somewhere

  abcast::AbcastMetrics totals;
  std::uint64_t delivered_unique = 0;
  TimePoint duration_ms = 0.0;
  std::uint64_t events_executed = 0;

  /// Per-process a-delivery order (index = ProcessId) — lets property tests
  /// assert per-sender FIFO and other order invariants beyond the built-in
  /// pairwise prefix check.
  std::vector<std::vector<abcast::MsgId>> histories;

  [[nodiscard]] bool safe() const { return total_order_ok && integrity_ok; }
  /// Transport unicasts per unique a-delivered message (Table 1 column).
  [[nodiscard]] double messages_per_abcast() const {
    return delivered_unique == 0
               ? 0.0
               : static_cast<double>(totals.transport.messages_sent +
                                     totals.w_broadcasts) /
                     static_cast<double>(delivered_unique);
  }
};

using SimAbcastFactory = std::function<std::unique_ptr<abcast::AtomicBroadcast>(
    ProcessId self, GroupParams group, abcast::AbcastHost& host,
    const fd::OmegaView& omega, const fd::SuspectView& suspects)>;

/// "c-l" (C-Abcast over L-Consensus), "c-p", "wabcast", "paxos".
SimAbcastFactory abcast_factory_by_name(const std::string& name);

AbcastRunResult run_abcast(const AbcastRunConfig& cfg,
                           const SimAbcastFactory& factory);

}  // namespace zdc::sim
