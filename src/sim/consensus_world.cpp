#include "sim/consensus_world.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/stable_storage.h"
#include "fault/corrupt.h"
#include "common/log.h"
#include "consensus/brasileiro.h"
#include "consensus/chandra_toueg.h"
#include "consensus/ef_consensus.h"
#include "consensus/fast_paxos.h"
#include "consensus/l_consensus.h"
#include "consensus/p_consensus.h"
#include "consensus/paxos.h"
#include "consensus/recovering_paxos.h"
#include "consensus/wab_consensus.h"
#include "sim/event_queue.h"
#include "sim/sim_metrics.h"

namespace zdc::sim {

namespace {

/// The whole simulated deployment for one consensus instance.
class ConsensusWorld {
 public:
  ConsensusWorld(const ConsensusRunConfig& cfg, const SimConsensusFactory& factory)
      : cfg_(cfg),
        factory_(factory),
        rng_(cfg.seed),
        lan_(cfg.net, cfg.group.n, rng_.fork(0x11)),
        fd_(cfg.fd, cfg.group.n, events_,
            [this](ProcessId p) { notify_fd_change(p); }),
        policy_(cfg.group.n),
        blocked_(static_cast<std::size_t>(cfg.group.n) * cfg.group.n),
        paused_work_(cfg.group.n) {
    lan_.set_link_policy(&policy_);
    build_nodes(factory);
  }

  ConsensusRunResult run();

 private:
  struct Node;

  /// ConsensusHost implementation routing into the world.
  struct Host final : consensus::ConsensusHost {
    Host(ConsensusWorld& world, ProcessId self) : world_(world), self_(self) {}
    void send(ProcessId to, std::string bytes) override {
      world_.unicast(self_, to, std::move(bytes));
    }
    void broadcast(std::string bytes) override {
      world_.broadcast(self_, std::move(bytes));
    }
    void deliver_decision(const Value& v) override {
      world_.record_decision(self_, v);
    }
    void w_broadcast(std::uint64_t stage, std::string payload) override {
      world_.wab_broadcast(self_, stage, std::move(payload));
    }
    ConsensusWorld& world_;
    ProcessId self_;
  };

  struct Node {
    std::unique_ptr<Host> host;
    std::unique_ptr<consensus::Consensus> protocol;
    bool crashed = false;
    std::uint32_t broadcasts_done = 0;
    // Pending mid-broadcast truncation, if any.
    std::uint32_t truncate_at = 0;
    std::vector<ProcessId> truncate_targets;
    ProcessOutcome outcome;
  };

  void build_nodes(const SimConsensusFactory& factory);
  void unicast(ProcessId from, ProcessId to, std::string bytes);
  void broadcast(ProcessId from, std::string bytes);
  void wab_broadcast(ProcessId from, std::uint64_t stage, std::string payload);
  void deliver_one(ProcessId from, ProcessId to, TimePoint tx_end,
                   const std::shared_ptr<const std::string>& bytes);
  void schedule_arrival(ProcessId from, ProcessId to, TimePoint tx_end,
                        const std::shared_ptr<const std::string>& bytes);
  void record_decision(ProcessId p, const Value& v);
  void notify_fd_change(ProcessId p);
  void crash(ProcessId p);
  void restart(ProcessId p);
  void apply_fault(const fault::FaultAction& a);
  /// Runs `fn` as node p now — unless p is crashed (dropped) or paused
  /// (parked until resume). Every entry into protocol code goes through here.
  void run_on_node(ProcessId p, std::function<void()> fn);
  void release_unblocked();
  void release_paused(ProcessId p);
  [[nodiscard]] bool all_correct_decided() const;

  void trace(TraceKind kind, ProcessId subject, ProcessId peer = kNoProcess,
             std::string detail = {}) {
    if (cfg_.trace != nullptr) {
      cfg_.trace->record(events_.now(), kind, subject, peer, std::move(detail));
    }
    note_kind(kind_counters_, kind, subject);
  }

  const ConsensusRunConfig& cfg_;
  const SimConsensusFactory& factory_;
  common::Rng rng_;
  EventQueue events_;
  LanModel lan_;
  FdSim fd_;
  std::vector<Node> nodes_;
  fault::LinkPolicy policy_;
  /// Reliable messages parked on a cut link, re-injected when it re-opens
  /// (row-major (from, to) like the policy table).
  std::vector<std::vector<std::shared_ptr<const std::string>>> blocked_;
  /// Work frozen while its target process is paused, flushed on resume.
  std::vector<std::vector<std::function<void()>>> paused_work_;
  std::size_t undecided_correct_ = 0;
  bool reincarnation_conflict_ = false;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t equivocations_ = 0;
  /// Per-(kind, process) counters; empty when cfg_.metrics == nullptr.
  KindCounters kind_counters_;
};

void ConsensusWorld::build_nodes(const SimConsensusFactory& factory) {
  const std::uint32_t n = cfg_.group.n;
  ZDC_ASSERT_MSG(cfg_.proposals.size() == n, "need one proposal per process");
  nodes_.resize(n);
  kind_counters_ = register_kind_counters(cfg_.metrics, n);

  std::vector<bool> initially_crashed(n, false);
  for (const CrashSpec& c : cfg_.crashes) {
    ZDC_ASSERT(c.p < n);
    if (c.initial) initially_crashed[c.p] = true;
  }

  for (ProcessId p = 0; p < n; ++p) {
    Node& node = nodes_[p];
    node.host = std::make_unique<Host>(*this, p);
    node.protocol = factory(p, cfg_.group, *node.host, fd_.omega_view(p),
                            fd_.suspect_view(p));
    node.crashed = initially_crashed[p];
    node.outcome.correct = !initially_crashed[p];
  }

  fd_.initialize(initially_crashed);

  // Schedule timed crashes and arm broadcast truncations.
  for (const CrashSpec& c : cfg_.crashes) {
    if (c.initial) continue;
    if (c.truncate_broadcast_index > 0) {
      nodes_[c.p].truncate_at = c.truncate_broadcast_index;
      nodes_[c.p].truncate_targets = c.partial_targets;
      nodes_[c.p].outcome.correct = false;
    } else {
      nodes_[c.p].outcome.correct = false;
      events_.at(c.time, [this, p = c.p] { crash(p); });
      if (c.restart_time >= 0.0) {
        ZDC_ASSERT_MSG(c.restart_time > c.time,
                       "restart must come after the crash");
        events_.at(c.restart_time, [this, p = c.p] { restart(p); });
      }
    }
  }

  // Schedule proposals.
  for (ProcessId p = 0; p < n; ++p) {
    if (nodes_[p].crashed) continue;
    const TimePoint when =
        p < cfg_.propose_times.size() ? cfg_.propose_times[p] : 0.0;
    events_.at(when, [this, p] {
      run_on_node(p, [this, p] {
        trace(TraceKind::kPropose, p, kNoProcess, cfg_.proposals[p]);
        nodes_[p].protocol->propose(cfg_.proposals[p]);
      });
    });
  }

  // Schedule the nemesis plan.
  for (const fault::FaultAction& a : cfg_.fault_plan.actions) {
    events_.at(a.time, [this, a] { apply_fault(a); });
  }

  undecided_correct_ = 0;
  for (const Node& node : nodes_) {
    if (node.outcome.correct) ++undecided_correct_;
  }
}

void ConsensusWorld::unicast(ProcessId from, ProcessId to, std::string bytes) {
  ZDC_ASSERT(to < nodes_.size());
  if (nodes_[from].crashed) return;
  trace(TraceKind::kSend, from, to);
  auto payload = std::make_shared<const std::string>(std::move(bytes));
  if (from == to) {
    const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
    events_.at(lan_.local_delivery(sent), [this, from, to, payload] {
      run_on_node(to, [this, from, to, payload] {
        trace(TraceKind::kDeliver, to, from);
        nodes_[to].protocol->on_message(from, *payload);
      });
    });
    return;
  }
  const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
  const TimePoint tx_end = lan_.occupy_medium(sent, payload->size());
  deliver_one(from, to, tx_end, payload);
}

void ConsensusWorld::deliver_one(ProcessId from, ProcessId to, TimePoint tx_end,
                                 const std::shared_ptr<const std::string>& bytes) {
  if (lan_.link_blocked(from, to)) {
    // TCP semantics: the connection stalls across the cut and resumes after
    // the heal — the bytes are parked, not lost (release_unblocked).
    blocked_[static_cast<std::size_t>(from) * nodes_.size() + to].push_back(
        bytes);
    return;
  }
  fault::CorruptSpec spec;
  if (lan_.consume_corruption(from, to, &spec)) {
    // Surface-then-retransmit: the corrupted frame arrives first (the
    // receiver's integrity layer sees — and drops — real garbage), and the
    // clean original follows one retransmission quantum later. The reliable
    // channel never loses data, so corruption costs latency, not liveness.
    ++frames_corrupted_;
    auto corrupted = std::make_shared<const std::string>(
        fault::bit_flip_copy(*bytes, spec.byte, spec.bit));
    schedule_arrival(from, to, tx_end, corrupted);
    schedule_arrival(from, to, tx_end + lan_.config().reliable_retransmit_ms,
                     bytes);
    return;
  }
  schedule_arrival(from, to, tx_end, bytes);
}

void ConsensusWorld::schedule_arrival(
    ProcessId from, ProcessId to, TimePoint tx_end,
    const std::shared_ptr<const std::string>& bytes) {
  const TimePoint arrival =
      lan_.arrival_time(tx_end) + lan_.reliable_link_penalty_ms(from, to);
  events_.at(arrival, [this, from, to, bytes] {
    run_on_node(to, [this, from, to, bytes] {
      const TimePoint handled = lan_.occupy_receiver_cpu(to, events_.now());
      events_.at(handled, [this, from, to, bytes] {
        run_on_node(to, [this, from, to, bytes] {
          trace(TraceKind::kDeliver, to, from);
          nodes_[to].protocol->on_message(from, *bytes);
        });
      });
    });
  });
}

void ConsensusWorld::broadcast(ProcessId from, std::string bytes) {
  Node& sender = nodes_[from];
  if (sender.crashed) return;
  ++sender.broadcasts_done;

  const bool truncated = sender.truncate_at != 0 &&
                         sender.broadcasts_done == sender.truncate_at;
  auto payload = std::make_shared<const std::string>(std::move(bytes));
  // Equivocation (duplicate-divergent-send): this broadcast also puts a
  // divergent duplicate on the wire to every remote receiver, each copy
  // corrupted differently (the flipped bit varies by receiver). With frame
  // checksums on, every duplicate is a detectable drop; the total-order and
  // agreement oracles confirm the originals still carry the run.
  const bool equivocating = lan_.consume_equivocation(from);

  for (ProcessId to = 0; to < nodes_.size(); ++to) {
    if (truncated &&
        std::find(sender.truncate_targets.begin(), sender.truncate_targets.end(),
                  to) == sender.truncate_targets.end()) {
      continue;
    }
    if (to == from) {
      trace(TraceKind::kSend, from, to);
      const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
      events_.at(lan_.local_delivery(sent), [this, from, to, payload] {
        run_on_node(to, [this, from, to, payload] {
          trace(TraceKind::kDeliver, to, from);
          nodes_[to].protocol->on_message(from, *payload);
        });
      });
    } else {
      trace(TraceKind::kSend, from, to);
      const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
      const TimePoint tx_end = lan_.occupy_medium(sent, payload->size());
      deliver_one(from, to, tx_end, payload);
      if (equivocating) {
        ++equivocations_;
        auto divergent = std::make_shared<const std::string>(
            fault::bit_flip_copy(*payload, fault::kMiddleByte, to % 8u));
        const TimePoint tx2 = lan_.occupy_medium(tx_end, divergent->size());
        deliver_one(from, to, tx2, divergent);
      }
    }
  }

  if (truncated) crash(from);
}

void ConsensusWorld::wab_broadcast(ProcessId from, std::uint64_t stage,
                                   std::string payload) {
  if (nodes_[from].crashed) return;
  trace(TraceKind::kWabSend, from);
  // UDP multicast: one transmission, per-receiver jitter; the sender hears
  // its own datagram through the medium like everyone else (the order
  // correlation that spontaneous order rests on).
  auto body = std::make_shared<const std::string>(std::move(payload));
  const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
  const TimePoint tx_end = lan_.occupy_medium(sent, body->size());
  for (ProcessId to = 0; to < nodes_.size(); ++to) {
    if (to != from && lan_.drop_wab_datagram()) continue;
    // Best-effort datagrams on a cut or lossy link are simply gone — the
    // oracle has no retransmission (and does not need one).
    if (to != from && lan_.drop_best_effort(from, to)) continue;
    const TimePoint arrival =
        lan_.wab_arrival_time(tx_end) + lan_.best_effort_extra_delay_ms(from, to);
    events_.at(arrival, [this, from, to, stage, body] {
      run_on_node(to, [this, from, to, stage, body] {
        const TimePoint handled = lan_.occupy_receiver_cpu(to, events_.now());
        events_.at(handled, [this, from, to, stage, body] {
          run_on_node(to, [this, from, to, stage, body] {
            trace(TraceKind::kWabDeliver, to, from);
            nodes_[to].protocol->on_w_deliver(stage, from, *body);
          });
        });
      });
    });
  }
}

void ConsensusWorld::crash(ProcessId p) {
  if (nodes_[p].crashed) return;
  trace(TraceKind::kCrash, p);
  nodes_[p].crashed = true;
  if (nodes_[p].outcome.correct) {
    nodes_[p].outcome.correct = false;
    if (!nodes_[p].outcome.decided) --undecided_correct_;
  }
  fd_.on_crash(p);
}

void ConsensusWorld::record_decision(ProcessId p, const Value& v) {
  Node& node = nodes_[p];
  if (node.outcome.decided) {
    // A restarted incarnation deciding differently from its pre-crash self
    // is an agreement violation across incarnations.
    if (node.outcome.decision != v) reincarnation_conflict_ = true;
    return;
  }
  node.outcome.decided = true;
  node.outcome.decision = v;
  trace(TraceKind::kDecide, p, kNoProcess, v);
  node.outcome.steps = node.protocol->decision_steps();
  node.outcome.path = node.protocol->decision_path();
  node.outcome.decide_time = events_.now();
  if (cfg_.metrics != nullptr) {
    // Decisions are rare; registering through the registry here (instead of
    // pre-registered handles) keeps the hot paths untouched.
    const char* path =
        node.outcome.path == consensus::DecisionPath::kRound ? "round"
        : node.outcome.path == consensus::DecisionPath::kForwarded
            ? "forwarded"
            : "none";
    cfg_.metrics
        ->counter("zdc_sim_decisions_path_total",
                  {{"process", std::to_string(p)}, {"path", path}})
        .inc();
    cfg_.metrics->counter("zdc_sim_decision_steps_total",
                          obs::process_label(p))
        .inc(node.outcome.steps);
    cfg_.metrics->histogram("zdc_sim_decision_latency_ms", {})
        .observe(node.outcome.decide_time);
  }
  if (node.outcome.correct) {
    ZDC_ASSERT(undecided_correct_ > 0);
    --undecided_correct_;
  }
}

void ConsensusWorld::notify_fd_change(ProcessId p) {
  run_on_node(p, [this, p] {
    trace(TraceKind::kFdChange, p);
    nodes_[p].protocol->on_fd_change();
  });
}

void ConsensusWorld::restart(ProcessId p) {
  Node& node = nodes_[p];
  if (!node.crashed) return;
  trace(TraceKind::kPropose, p, kNoProcess, "restart");
  node.crashed = false;
  fd_.on_restart(p);
  // A fresh incarnation: new protocol object (the factory re-injects any
  // durable state), original proposal re-proposed.
  node.protocol = factory_(p, cfg_.group, *node.host, fd_.omega_view(p),
                           fd_.suspect_view(p));
  node.protocol->propose(cfg_.proposals[p]);
}

void ConsensusWorld::apply_fault(const fault::FaultAction& a) {
  trace(TraceKind::kFault,
        a.p < nodes_.size() ? a.p : kNoProcess, kNoProcess,
        fault::to_string(a));
  switch (a.kind) {
    case fault::FaultKind::kCrash:
      crash(a.p);
      break;
    case fault::FaultKind::kRestart:
      restart(a.p);
      break;
    case fault::FaultKind::kPause:
      fault::apply_to_policy(a, policy_);
      fd_.on_pause(a.p);
      break;
    case fault::FaultKind::kResume:
      fault::apply_to_policy(a, policy_);
      fd_.on_resume(a.p);
      release_paused(a.p);
      break;
    default:
      // Link-table edits (partition/heal/isolate/link): apply, then re-inject
      // any parked traffic whose link just re-opened.
      fault::apply_to_policy(a, policy_);
      release_unblocked();
      break;
  }
}

void ConsensusWorld::run_on_node(ProcessId p, std::function<void()> fn) {
  if (nodes_[p].crashed) return;
  if (policy_.paused(p)) {
    paused_work_[p].push_back(std::move(fn));
    return;
  }
  // Tag assertion failures inside the handler with (node, sim time) — every
  // protocol invocation in this world funnels through here.
  detail::AssertContextScope scope(p, events_.now());
  fn();
}

void ConsensusWorld::release_unblocked() {
  const std::uint32_t n = cfg_.group.n;
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      auto& parked = blocked_[static_cast<std::size_t>(from) * n + to];
      if (parked.empty() || lan_.link_blocked(from, to)) continue;
      // The stalled connection resumes: everything parked goes back on the
      // wire now, in original send order.
      std::vector<std::shared_ptr<const std::string>> batch;
      batch.swap(parked);
      for (const auto& bytes : batch) {
        deliver_one(from, to, events_.now(), bytes);
      }
    }
  }
}

void ConsensusWorld::release_paused(ProcessId p) {
  if (paused_work_[p].empty()) return;
  auto work = std::make_shared<std::vector<std::function<void()>>>(
      std::move(paused_work_[p]));
  paused_work_[p] = {};
  events_.at(events_.now(), [this, p, work] {
    for (auto& fn : *work) run_on_node(p, fn);
  });
}

bool ConsensusWorld::all_correct_decided() const {
  return undecided_correct_ == 0;
}

ConsensusRunResult ConsensusWorld::run() {
  ConsensusRunResult result;
  std::uint64_t executed = 0;
  while (executed < cfg_.event_limit && !events_.empty() &&
         events_.now() <= cfg_.time_limit_ms) {
    events_.run_next();
    ++executed;
    if (all_correct_decided()) break;
  }
  result.events_executed = executed;

  result.outcomes.reserve(nodes_.size());
  bool first = true;
  ProcessId metric_p = 0;
  result.frames_corrupted = frames_corrupted_;
  result.equivocations = equivocations_;
  for (Node& node : nodes_) {
    result.totals += node.protocol->metrics();
    result.corrupt_frames_dropped += node.protocol->corrupt_frames_dropped();
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->counter("zdc_sim_rounds_total", obs::process_label(metric_p))
          .inc(node.protocol->metrics().rounds_started);
    }
    ++metric_p;
    result.outcomes.push_back(node.outcome);
    const ProcessOutcome& o = node.outcome;
    if (o.decided) {
      if (first || o.decide_time < result.first_decision_time) {
        result.first_decision_time = o.decide_time;
      }
      result.last_decision_time =
          std::max(result.last_decision_time, o.decide_time);
      first = false;
      if (std::find(cfg_.proposals.begin(), cfg_.proposals.end(), o.decision) ==
          cfg_.proposals.end()) {
        result.validity_ok = false;
      }
    }
  }

  // Agreement across every process that decided (crashed ones included).
  const Value* seen = nullptr;
  for (const ProcessOutcome& o : result.outcomes) {
    if (!o.decided) continue;
    if (seen == nullptr) {
      seen = &o.decision;
    } else if (*seen != o.decision) {
      result.agreement_ok = false;
    }
  }

  if (reincarnation_conflict_) result.agreement_ok = false;
  result.all_correct_decided = all_correct_decided();
  return result;
}

}  // namespace

SimConsensusFactory l_consensus_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::LConsensus>(self, group, host, omega);
  };
}

SimConsensusFactory p_consensus_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView& suspects) {
    return std::make_unique<consensus::PConsensus>(self, group, host, suspects);
  };
}

SimConsensusFactory paxos_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::PaxosConsensus>(self, group, host, omega);
  };
}

SimConsensusFactory brasileiro_factory(const std::string& underlying) {
  return [underlying](ProcessId self, GroupParams group,
                      consensus::ConsensusHost& host, const fd::OmegaView& omega,
                      const fd::SuspectView& suspects) {
    // The views are owned by the world and outlive the protocol; capture a
    // pointer (capturing the reference parameter would dangle once this outer
    // factory call returns).
    const fd::OmegaView* omega_ptr = &omega;
    consensus::ConsensusFactory inner;
    if (underlying == "paxos") {
      inner = [omega_ptr](ProcessId s, GroupParams g,
                          consensus::ConsensusHost& h) {
        return std::make_unique<consensus::PaxosConsensus>(s, g, h, *omega_ptr);
      };
    } else {
      inner = [omega_ptr](ProcessId s, GroupParams g,
                          consensus::ConsensusHost& h) {
        return std::make_unique<consensus::LConsensus>(s, g, h, *omega_ptr);
      };
    }
    (void)suspects;
    return std::make_unique<consensus::BrasileiroConsensus>(self, group, host,
                                                            std::move(inner));
  };
}

SimConsensusFactory ef_consensus_factory(std::uint32_t e,
                                         const std::string& underlying) {
  return [e, underlying](ProcessId self, GroupParams group,
                         consensus::ConsensusHost& host,
                         const fd::OmegaView& omega,
                         const fd::SuspectView& suspects) {
    (void)suspects;
    const fd::OmegaView* omega_ptr = &omega;
    consensus::ConsensusFactory inner;
    if (underlying == "paxos") {
      inner = [omega_ptr](ProcessId s, GroupParams g,
                          consensus::ConsensusHost& h) {
        return std::make_unique<consensus::PaxosConsensus>(s, g, h, *omega_ptr);
      };
    } else {
      inner = [omega_ptr](ProcessId s, GroupParams g,
                          consensus::ConsensusHost& h) {
        return std::make_unique<consensus::LConsensus>(s, g, h, *omega_ptr);
      };
    }
    return std::make_unique<consensus::EfConsensus>(self, group, e, host,
                                                    std::move(inner));
  };
}

SimConsensusFactory ct_consensus_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView& suspects) {
    return std::make_unique<consensus::CtConsensus>(self, group, host,
                                                    suspects);
  };
}

SimConsensusFactory recovering_paxos_factory() {
  // Each process gets its own stable storage, shared by reference into the
  // protocol. For restart scenarios build the factory by hand around
  // externally owned storage (tests/recovery_test.cpp); this canned variant
  // is for no-restart runs (CLI, sweeps), where the storage's lifetime can
  // ride along in the closure.
  auto storages = std::make_shared<
      std::map<ProcessId, std::shared_ptr<common::InMemoryStableStorage>>>();
  return [storages](ProcessId self, GroupParams group,
                    consensus::ConsensusHost& host, const fd::OmegaView& omega,
                    const fd::SuspectView&) {
    auto& slot = (*storages)[self];
    if (slot == nullptr) slot = std::make_shared<common::InMemoryStableStorage>();
    return std::make_unique<consensus::RecoveringPaxosConsensus>(
        self, group, host, omega, *slot);
  };
}

SimConsensusFactory recovering_paxos_factory(StorageFactory make_storage) {
  if (!make_storage) return recovering_paxos_factory();
  // Storage is built once per process and cached: a restart rebuilds the
  // protocol object but reads back the same (surviving) storage, which is
  // the whole crash-recovery contract.
  auto storages = std::make_shared<
      std::map<ProcessId, std::shared_ptr<common::StableStorage>>>();
  return [storages, make_storage](ProcessId self, GroupParams group,
                                  consensus::ConsensusHost& host,
                                  const fd::OmegaView& omega,
                                  const fd::SuspectView&) {
    auto& slot = (*storages)[self];
    if (slot == nullptr) slot = make_storage(self);
    ZDC_ASSERT_MSG(slot != nullptr, "storage factory returned null");
    return std::make_unique<consensus::RecoveringPaxosConsensus>(
        self, group, host, omega, *slot);
  };
}

SimConsensusFactory fast_paxos_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView& omega, const fd::SuspectView&) {
    return std::make_unique<consensus::FastPaxosConsensus>(self, group, host,
                                                           omega);
  };
}

SimConsensusFactory wab_consensus_factory() {
  return [](ProcessId self, GroupParams group, consensus::ConsensusHost& host,
            const fd::OmegaView&, const fd::SuspectView&) {
    return std::make_unique<consensus::WabConsensus>(self, group, host);
  };
}

SimConsensusFactory consensus_factory_by_name(const std::string& name) {
  if (name == "l") return l_consensus_factory();
  if (name == "p") return p_consensus_factory();
  if (name == "paxos") return paxos_factory();
  if (name == "brasileiro-l") return brasileiro_factory("l");
  if (name == "brasileiro-paxos") return brasileiro_factory("paxos");
  if (name == "wab") return wab_consensus_factory();
  if (name == "ct") return ct_consensus_factory();
  if (name == "fast-paxos") return fast_paxos_factory();
  if (name == "rec-paxos") return recovering_paxos_factory();
  ZDC_ASSERT_MSG(false, "unknown consensus protocol name");
  return {};
}

SimConsensusFactory consensus_factory_by_name(const std::string& name,
                                              const RunOptions& opts) {
  if (name == "rec-paxos") {
    return recovering_paxos_factory(opts.storage_factory);
  }
  return consensus_factory_by_name(name);
}

ConsensusRunResult run_consensus(const ConsensusRunConfig& cfg,
                                 const SimConsensusFactory& factory) {
  ConsensusWorld world(cfg, factory);
  return world.run();
}

}  // namespace zdc::sim
