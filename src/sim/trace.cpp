#include "sim/trace.h"

#include <algorithm>
#include <cstdio>

namespace zdc::sim {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPropose: return "propose";
    case TraceKind::kSend: return "send";
    case TraceKind::kDeliver: return "deliver";
    case TraceKind::kWabSend: return "w-send";
    case TraceKind::kWabDeliver: return "w-deliver";
    case TraceKind::kDecide: return "decide";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kFdChange: return "fd-change";
    case TraceKind::kFault: return "fault";
  }
  return "?";
}

void TraceRecorder::record(TimePoint time, TraceKind kind, ProcessId subject,
                           ProcessId peer, std::string detail) {
  TraceEvent ev;
  ev.time = time;
  ev.kind = kind;
  ev.subject = subject;
  ev.peer = peer;
  ev.detail = std::move(detail);
  events_.push_back(std::move(ev));
}

std::size_t TraceRecorder::count(TraceKind kind) const {
  std::size_t total = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == kind) ++total;
  }
  return total;
}

bool TraceRecorder::causally_consistent() const {
  // Edge -> sorted send / delivery times. A send event's subject is the
  // sender and peer the destination; a delivery's subject is the receiver
  // and peer the sender — both map to the same (sender, receiver) edge.
  std::map<std::pair<ProcessId, ProcessId>, std::vector<TimePoint>> sends;
  std::map<std::pair<ProcessId, ProcessId>, std::vector<TimePoint>> delivers;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceKind::kSend) {
      sends[{ev.subject, ev.peer}].push_back(ev.time);
    } else if (ev.kind == TraceKind::kDeliver) {
      delivers[{ev.peer, ev.subject}].push_back(ev.time);
    }
  }
  for (auto& [edge, times] : sends) std::sort(times.begin(), times.end());
  for (auto& [edge, dtimes] : delivers) {
    std::sort(dtimes.begin(), dtimes.end());
    const auto sit = sends.find(edge);
    if (sit == sends.end()) return false;  // delivery without any send
    const auto& stimes = sit->second;
    if (dtimes.size() > stimes.size()) return false;  // duplication
    for (std::size_t k = 0; k < dtimes.size(); ++k) {
      // Sorted matching: the k-th earliest delivery needs a distinct send no
      // later than it; the earliest k+1 sends are the best candidates.
      if (dtimes[k] < stimes[k]) return false;
    }
  }
  return true;
}

std::string TraceRecorder::render_spacetime(
    std::uint32_t n, std::size_t max_rows,
    const std::vector<TraceKind>& kinds) const {
  const std::vector<TraceKind> default_kinds = {
      TraceKind::kPropose, TraceKind::kDecide, TraceKind::kCrash,
      TraceKind::kFdChange};
  const std::vector<TraceKind>& selected =
      kinds.empty() ? default_kinds : kinds;
  auto wanted = [&selected](TraceKind k) {
    return std::find(selected.begin(), selected.end(), k) != selected.end();
  };

  constexpr std::size_t kLane = 16;
  std::string out;
  char buf[64];

  // Header.
  out += "   time(ms)  ";
  for (std::uint32_t p = 0; p < n; ++p) {
    std::snprintf(buf, sizeof buf, "p%-*u", static_cast<int>(kLane - 1), p);
    out += buf;
  }
  out += "\n";

  std::size_t rows = 0;
  for (const TraceEvent& ev : events_) {
    if (!wanted(ev.kind) || ev.subject >= n) continue;
    if (rows++ >= max_rows) {
      out += "   ... (truncated)\n";
      break;
    }
    std::snprintf(buf, sizeof buf, "%11.3f  ", ev.time);
    out += buf;
    for (std::uint32_t p = 0; p < n; ++p) {
      std::string cell;
      if (p == ev.subject) {
        cell = trace_kind_name(ev.kind);
        if (ev.peer != kNoProcess) {
          cell += (ev.kind == TraceKind::kSend || ev.kind == TraceKind::kWabSend)
                      ? "->p" + std::to_string(ev.peer)
                      : "<-p" + std::to_string(ev.peer);
        }
        if (!ev.detail.empty()) {
          std::string d = ev.detail;
          if (d.size() > 6) d = d.substr(0, 5) + "~";
          cell += "(" + d + ")";
        }
      } else {
        cell = ".";
      }
      if (cell.size() < kLane) cell.append(kLane - cell.size(), ' ');
      out += cell;
    }
    out += "\n";
  }
  return out;
}

}  // namespace zdc::sim
