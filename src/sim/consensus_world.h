// Deterministic single-instance consensus harness.
//
// Builds n protocol instances over the LAN model and a simulated failure
// detector, injects proposals and crashes, runs the event queue to quiescence
// and checks the consensus properties. Used by the protocol test-suites
// (hundreds of randomized schedules per protocol) and by the step-count
// benches (one-step / zero-degradation experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "consensus/consensus.h"
#include "fault/fault_plan.h"
#include "fd/failure_detector.h"
#include "obs/run_options.h"
#include "sim/fd_sim.h"
#include "sim/lan_model.h"
#include "sim/trace.h"

namespace zdc::sim {

/// Crash injection for one process.
struct CrashSpec {
  ProcessId p = 0;
  /// Crash instant; 0 with initial=true means dead before the run starts.
  TimePoint time = 0.0;
  bool initial = false;
  /// If nonzero, instead of crashing at `time`, the process executes until its
  /// k-th broadcast (1-based), which is delivered only to `partial_targets`,
  /// and crashes immediately afterwards — the adversarial mid-broadcast crash
  /// the agreement proofs must survive.
  std::uint32_t truncate_broadcast_index = 0;
  std::vector<ProcessId> partial_targets;
  /// Crash-recovery model: if >= 0, the process restarts at this time — a
  /// fresh protocol instance is built through the factory (same host, same
  /// FD views, and crucially the same StableStorage if the factory injects
  /// one) and re-proposes. Use with FdMode::kStable (the simulated FDs have
  /// no un-suspect path; crash-recovery failure detection is its own topic).
  double restart_time = -1.0;
};

/// Inherits the shared group/net/fd/seed block plus the observability hooks
/// (metrics registry, trace recorder) from zdc::RunOptions — see
/// obs/run_options.h for the fluent builder.
struct ConsensusRunConfig : RunOptions {
  std::vector<Value> proposals;          ///< size n (entries of crashed procs unused)
  std::vector<TimePoint> propose_times;  ///< empty = all propose at t=0
  std::vector<CrashSpec> crashes;
  TimePoint time_limit_ms = 60'000.0;
  std::uint64_t event_limit = 10'000'000;
  /// Scripted nemesis actions, applied at their timestamps (src/fault/).
  /// Partitions park reliable traffic until a heal (TCP semantics: connections
  /// stall, they do not lose data); best-effort oracle datagrams on a cut link
  /// are lost. pause/resume freeze a process's event handling without killing
  /// it — under FdMode::kCrashTracking this manufactures *false* suspicions.
  /// crash/restart route through the same paths as CrashSpec-driven ones.
  fault::FaultPlan fault_plan;
};

struct ProcessOutcome {
  bool correct = true;
  bool decided = false;
  Value decision;
  std::uint32_t steps = 0;
  consensus::DecisionPath path = consensus::DecisionPath::kNone;
  TimePoint decide_time = 0.0;
};

struct ConsensusRunResult {
  std::vector<ProcessOutcome> outcomes;
  common::ProtocolMetrics totals;
  bool all_correct_decided = false;
  bool agreement_ok = true;  ///< over every process that decided
  bool validity_ok = true;   ///< decisions are among the proposals
  TimePoint first_decision_time = 0.0;
  TimePoint last_decision_time = 0.0;
  std::uint64_t events_executed = 0;
  /// Corruption-fault accounting (FaultPlan flip/scorrupt/equivocate): frames
  /// the fabric corrupted, divergent duplicates delivered, and frames the
  /// protocols' CRC seal rejected. With checksums on, every corrupted frame
  /// that *arrives* is a detectable drop, so corrupt_frames_dropped <=
  /// frames_corrupted + equivocations — with equality once every injected
  /// copy has landed (the run ends at all-decided, so the tail of the ledger
  /// may still be in flight; the model checker asserts exact equality at
  /// true quiescence).
  std::uint64_t frames_corrupted = 0;
  std::uint64_t equivocations = 0;
  std::uint64_t corrupt_frames_dropped = 0;

  [[nodiscard]] bool safe() const { return agreement_ok && validity_ok; }
};

/// Builds a protocol instance for one process. The views outlive the protocol.
using SimConsensusFactory = std::function<std::unique_ptr<consensus::Consensus>(
    ProcessId self, GroupParams group, consensus::ConsensusHost& host,
    const fd::OmegaView& omega, const fd::SuspectView& suspects)>;

/// Canned factories for the four protocol families.
SimConsensusFactory l_consensus_factory();
SimConsensusFactory p_consensus_factory();
SimConsensusFactory paxos_factory();
/// Brasileiro's one-step voting over an underlying module ("l" or "paxos").
SimConsensusFactory brasileiro_factory(const std::string& underlying);
SimConsensusFactory wab_consensus_factory();
/// Chandra-Toueg ◇S rotating-coordinator consensus (classic baseline).
SimConsensusFactory ct_consensus_factory();
/// Fast Paxos (one-step fast round + Ω-coordinated recovery), f < n/3.
SimConsensusFactory fast_paxos_factory();
/// Crash-recovery Paxos with per-process in-memory stable storage owned by
/// the factory closure (no-restart runs; restart tests inject storage).
SimConsensusFactory recovering_paxos_factory();
/// Same protocol, storage built through `make_storage` (RunOptions'
/// storage_factory — e.g. the WAL-backed durable store). Each process's
/// storage is built once and cached in the closure, so restart scenarios
/// rebuild the protocol over the surviving storage object.
SimConsensusFactory recovering_paxos_factory(StorageFactory make_storage);
/// Lamport's generalized (e, f) fast consensus over an underlying module
/// ("l" or "paxos"); requires n > max(2f, 2e+f).
SimConsensusFactory ef_consensus_factory(std::uint32_t e,
                                         const std::string& underlying);
/// Resolves a factory by protocol name: "l", "p", "paxos", "brasileiro-l",
/// "brasileiro-paxos", "wab", "ct", "fast-paxos", "rec-paxos". Aborts on
/// unknown names.
SimConsensusFactory consensus_factory_by_name(const std::string& name);
/// Same, honouring `opts.storage_factory` for storage-backed protocols
/// (currently rec-paxos); other names ignore it.
SimConsensusFactory consensus_factory_by_name(const std::string& name,
                                              const RunOptions& opts);

/// Runs one consensus instance to quiescence.
ConsensusRunResult run_consensus(const ConsensusRunConfig& cfg,
                                 const SimConsensusFactory& factory);

}  // namespace zdc::sim
