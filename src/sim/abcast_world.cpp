#include "sim/abcast_world.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "abcast/batching.h"
#include "abcast/c_abcast.h"
#include "abcast/paxos_abcast.h"
#include "common/assert.h"
#include "common/log.h"
#include "sim/event_queue.h"
#include "sim/sim_metrics.h"

namespace zdc::sim {

namespace {

class AbcastWorld {
 public:
  AbcastWorld(const AbcastRunConfig& cfg, const SimAbcastFactory& factory)
      : cfg_(cfg),
        rng_(cfg.seed),
        lan_(cfg.net, cfg.group.n, rng_.fork(0x22)),
        workload_rng_(rng_.fork(0x33)),
        fd_(cfg.fd, cfg.group.n, events_,
            [this](ProcessId p) { notify_fd_change(p); }),
        policy_(cfg.group.n),
        blocked_(static_cast<std::size_t>(cfg.group.n) * cfg.group.n),
        paused_work_(cfg.group.n) {
    lan_.set_link_policy(&policy_);
    build(factory);
  }

  AbcastRunResult run();

 private:
  struct Node;

  struct Host final : abcast::AbcastHost {
    Host(AbcastWorld& world, ProcessId self) : world_(world), self_(self) {}
    void send(ProcessId to, std::string bytes) override {
      world_.unicast(self_, to, std::move(bytes));
    }
    void broadcast(std::string bytes) override {
      world_.broadcast(self_, std::move(bytes));
    }
    void w_broadcast(InstanceId k, std::string payload) override {
      world_.wab_broadcast(self_, k, std::move(payload));
    }
    void a_deliver(const abcast::AppMessage& m) override {
      world_.record_delivery(self_, m);
    }
    AbcastWorld& world_;
    ProcessId self_;
  };

  struct Node {
    std::unique_ptr<Host> host;
    std::unique_ptr<abcast::AtomicBroadcast> protocol;
    bool crashed = false;
    std::vector<abcast::MsgId> history;  ///< delivery order
    std::set<abcast::MsgId> delivered;
    bool duplicate_delivery = false;
  };

  void build(const SimAbcastFactory& factory);
  void schedule_workload();
  void unicast(ProcessId from, ProcessId to, std::string bytes);
  void broadcast(ProcessId from, std::string bytes);
  void wab_broadcast(ProcessId from, InstanceId k, std::string payload);
  void deliver_transport(ProcessId from, ProcessId to, TimePoint tx_end,
                         const std::shared_ptr<const std::string>& bytes);
  void record_delivery(ProcessId p, const abcast::AppMessage& m);
  void notify_fd_change(ProcessId p);
  void crash(ProcessId p);
  void apply_fault(const fault::FaultAction& a);
  void run_on_node(ProcessId p, std::function<void()> fn);
  void release_unblocked();
  void release_paused(ProcessId p);
  [[nodiscard]] bool workload_complete() const;

  void trace(TraceKind kind, ProcessId subject, ProcessId peer = kNoProcess,
             std::string detail = {}) {
    if (cfg_.trace != nullptr) {
      cfg_.trace->record(events_.now(), kind, subject, peer, std::move(detail));
    }
    note_kind(kind_counters_, kind, subject);
  }

  const AbcastRunConfig& cfg_;
  common::Rng rng_;
  EventQueue events_;
  LanModel lan_;
  common::Rng workload_rng_;
  FdSim fd_;
  std::vector<Node> nodes_;
  fault::LinkPolicy policy_;
  std::vector<std::vector<std::shared_ptr<const std::string>>> blocked_;
  std::vector<std::vector<std::function<void()>>> paused_work_;
  /// Processes crashed by either CrashSpec or the fault plan — such senders'
  /// messages are not owed to everyone unless actually delivered somewhere.
  std::vector<bool> ever_crashes_;

  struct Tracked {
    TimePoint broadcast_time = 0.0;
    TimePoint first_delivery = -1.0;
    TimePoint sender_delivery = -1.0;
    std::uint32_t index = 0;  ///< submission index, for warmup filtering
  };
  std::map<abcast::MsgId, Tracked> tracked_;
  /// Messages every correct process must eventually deliver: everything sent
  /// by a process that never crashes, plus everything delivered anywhere.
  std::set<abcast::MsgId> expected_;
  std::uint32_t submitted_ = 0;
  /// Per-(kind, process) counters; empty when cfg_.metrics == nullptr.
  KindCounters kind_counters_;
};

void AbcastWorld::build(const SimAbcastFactory& factory) {
  const std::uint32_t n = cfg_.group.n;
  nodes_.resize(n);
  kind_counters_ = register_kind_counters(cfg_.metrics, n);

  std::vector<bool> initially_crashed(n, false);
  for (const CrashSpec& c : cfg_.crashes) {
    ZDC_ASSERT(c.p < n);
    if (c.initial) initially_crashed[c.p] = true;
  }

  for (ProcessId p = 0; p < n; ++p) {
    Node& node = nodes_[p];
    node.host = std::make_unique<Host>(*this, p);
    node.crashed = initially_crashed[p];
  }
  fd_.initialize(initially_crashed);
  // Protocols are created after the FD holds its t=0 output: Paxos-Abcast
  // reads Ω in its constructor.
  for (ProcessId p = 0; p < n; ++p) {
    nodes_[p].protocol = factory(p, cfg_.group, *nodes_[p].host,
                                 fd_.omega_view(p), fd_.suspect_view(p));
    // Batching knobs: the factory signature is protocol-agnostic, so the
    // world applies them via the concrete types (defaults = legacy).
    abcast::configure_batching(*nodes_[p].protocol, cfg_.batching);
  }

  for (const CrashSpec& c : cfg_.crashes) {
    ZDC_ASSERT_MSG(c.truncate_broadcast_index == 0,
                   "broadcast truncation is a ConsensusWorld-only feature");
    if (!c.initial) {
      events_.at(c.time, [this, p = c.p] { crash(p); });
    }
  }

  ever_crashes_.assign(n, false);
  for (const CrashSpec& c : cfg_.crashes) ever_crashes_[c.p] = true;
  for (const fault::FaultAction& a : cfg_.fault_plan.actions) {
    ZDC_ASSERT_MSG(a.kind != fault::FaultKind::kRestart,
                   "AbcastWorld is crash-stop; no restart support");
    if (a.kind == fault::FaultKind::kCrash) ever_crashes_[a.p] = true;
    events_.at(a.time, [this, a] { apply_fault(a); });
  }

  schedule_workload();
}

void AbcastWorld::schedule_workload() {
  const double mean_gap_ms = 1000.0 / cfg_.throughput_per_s;
  TimePoint t = 1.0;  // small offset so FD initialization settles first
  for (std::uint32_t i = 0; i < cfg_.message_count; ++i) {
    t += workload_rng_.exponential(mean_gap_ms);
    const std::uint32_t index = i;
    events_.at(t, [this, index] {
      // Uniform random sender among the currently-alive eligible processes
      // (paused processes cannot execute, so they cannot originate either).
      std::vector<ProcessId> alive;
      if (cfg_.workload_senders.empty()) {
        for (ProcessId p = 0; p < nodes_.size(); ++p) {
          if (!nodes_[p].crashed && !policy_.paused(p)) alive.push_back(p);
        }
      } else {
        for (ProcessId p : cfg_.workload_senders) {
          if (p < nodes_.size() && !nodes_[p].crashed && !policy_.paused(p)) {
            alive.push_back(p);
          }
        }
      }
      if (alive.empty()) return;
      const ProcessId sender =
          alive[workload_rng_.next_below(alive.size())];
      std::string payload(cfg_.payload_bytes, 'x');
      trace(TraceKind::kPropose, sender, kNoProcess,
            "#" + std::to_string(index));
      const abcast::MsgId id =
          nodes_[sender].protocol->a_broadcast(std::move(payload));
      Tracked tr;
      tr.broadcast_time = events_.now();
      tr.index = index;
      tracked_.emplace(id, tr);
      ++submitted_;
      // The sender is alive now; if it never crashes the message is owed to
      // every correct process. Senders with a scheduled future crash (spec or
      // fault plan) are handled by the "delivered anywhere" rule in
      // record_delivery.
      if (!ever_crashes_[sender]) expected_.insert(id);
    });
  }
}

void AbcastWorld::unicast(ProcessId from, ProcessId to, std::string bytes) {
  if (nodes_[from].crashed) return;
  trace(TraceKind::kSend, from, to);
  auto payload = std::make_shared<const std::string>(std::move(bytes));
  if (from == to) {
    const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
    events_.at(lan_.local_delivery(sent), [this, from, to, payload] {
      run_on_node(to, [this, from, to, payload] {
        trace(TraceKind::kDeliver, to, from);
        nodes_[to].protocol->on_message(from, *payload);
      });
    });
    return;
  }
  const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
  const TimePoint tx_end = lan_.occupy_medium(sent, payload->size());
  deliver_transport(from, to, tx_end, payload);
}

void AbcastWorld::deliver_transport(
    ProcessId from, ProcessId to, TimePoint tx_end,
    const std::shared_ptr<const std::string>& bytes) {
  if (lan_.link_blocked(from, to)) {
    // TCP semantics: parked across the cut, re-injected on heal.
    blocked_[static_cast<std::size_t>(from) * nodes_.size() + to].push_back(
        bytes);
    return;
  }
  const TimePoint arrival =
      lan_.arrival_time(tx_end) + lan_.reliable_link_penalty_ms(from, to);
  events_.at(arrival, [this, from, to, bytes] {
    run_on_node(to, [this, from, to, bytes] {
      const TimePoint handled = lan_.occupy_receiver_cpu(to, events_.now());
      events_.at(handled, [this, from, to, bytes] {
        run_on_node(to, [this, from, to, bytes] {
          trace(TraceKind::kDeliver, to, from);
          nodes_[to].protocol->on_message(from, *bytes);
        });
      });
    });
  });
}

void AbcastWorld::broadcast(ProcessId from, std::string bytes) {
  if (nodes_[from].crashed) return;
  auto payload = std::make_shared<const std::string>(std::move(bytes));
  for (ProcessId to = 0; to < nodes_.size(); ++to) {
    trace(TraceKind::kSend, from, to);
    if (to == from) {
      const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
      events_.at(lan_.local_delivery(sent), [this, from, to, payload] {
        run_on_node(to, [this, from, to, payload] {
          trace(TraceKind::kDeliver, to, from);
          nodes_[to].protocol->on_message(from, *payload);
        });
      });
    } else {
      const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
      const TimePoint tx_end = lan_.occupy_medium(sent, payload->size());
      deliver_transport(from, to, tx_end, payload);
    }
  }
}

void AbcastWorld::wab_broadcast(ProcessId from, InstanceId k,
                                std::string payload) {
  if (nodes_[from].crashed) return;
  trace(TraceKind::kWabSend, from);
  // The oracle is UDP broadcast: one CPU cost, one medium occupancy, and
  // independent per-receiver jitter — the jitter is what produces collisions
  // (different receivers seeing different firsts) under load. The sender
  // receives its own datagram through the same medium path (multicast echo):
  // this is what correlates the delivery order across *all* processes, the
  // physical basis of spontaneous order.
  auto body = std::make_shared<const std::string>(std::move(payload));
  const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
  const TimePoint tx_end = lan_.occupy_medium(sent, body->size());
  for (ProcessId to = 0; to < nodes_.size(); ++to) {
    if (to != from && lan_.drop_wab_datagram()) continue;  // best-effort
    if (to != from && lan_.drop_best_effort(from, to)) continue;  // nemesis
    const TimePoint arrival =
        lan_.wab_arrival_time(tx_end) + lan_.best_effort_extra_delay_ms(from, to);
    events_.at(arrival, [this, from, to, k, body] {
      run_on_node(to, [this, from, to, k, body] {
        const TimePoint handled = lan_.occupy_receiver_cpu(to, events_.now());
        events_.at(handled, [this, from, to, k, body] {
          run_on_node(to, [this, from, to, k, body] {
            trace(TraceKind::kWabDeliver, to, from);
            nodes_[to].protocol->on_w_deliver(k, from, *body);
          });
        });
      });
    });
  }
}

void AbcastWorld::record_delivery(ProcessId p, const abcast::AppMessage& m) {
  Node& node = nodes_[p];
  if (!node.delivered.insert(m.id).second) {
    node.duplicate_delivery = true;  // Integrity violation
    return;
  }
  node.history.push_back(m.id);
  trace(TraceKind::kDecide, p, m.id.sender,
        "s" + std::to_string(m.id.sender) + "/" + std::to_string(m.id.seq));
  expected_.insert(m.id);  // agreement: once delivered anywhere, owed to all

  auto it = tracked_.find(m.id);
  if (it != tracked_.end()) {
    Tracked& tr = it->second;
    if (tr.first_delivery < 0.0) tr.first_delivery = events_.now();
    if (m.id.sender == p) tr.sender_delivery = events_.now();
  }
}

void AbcastWorld::crash(ProcessId p) {
  if (nodes_[p].crashed) return;
  trace(TraceKind::kCrash, p);
  nodes_[p].crashed = true;
  fd_.on_crash(p);
}

void AbcastWorld::notify_fd_change(ProcessId p) {
  if (nodes_[p].protocol == nullptr) return;
  run_on_node(p, [this, p] { nodes_[p].protocol->on_fd_change(); });
}

void AbcastWorld::apply_fault(const fault::FaultAction& a) {
  trace(TraceKind::kFault, a.p < nodes_.size() ? a.p : kNoProcess, kNoProcess,
        fault::to_string(a));
  switch (a.kind) {
    case fault::FaultKind::kCrash:
      crash(a.p);
      break;
    case fault::FaultKind::kRestart:
      ZDC_ASSERT_MSG(false, "AbcastWorld is crash-stop; no restart support");
      break;
    case fault::FaultKind::kPause:
      fault::apply_to_policy(a, policy_);
      fd_.on_pause(a.p);
      break;
    case fault::FaultKind::kResume:
      fault::apply_to_policy(a, policy_);
      fd_.on_resume(a.p);
      release_paused(a.p);
      break;
    default:
      fault::apply_to_policy(a, policy_);
      release_unblocked();
      break;
  }
}

void AbcastWorld::run_on_node(ProcessId p, std::function<void()> fn) {
  if (nodes_[p].crashed) return;
  if (policy_.paused(p)) {
    paused_work_[p].push_back(std::move(fn));
    return;
  }
  // Tag assertion failures inside the handler with (node, sim time) — every
  // protocol invocation in this world funnels through here.
  detail::AssertContextScope scope(p, events_.now());
  fn();
}

void AbcastWorld::release_unblocked() {
  const std::uint32_t n = cfg_.group.n;
  for (ProcessId from = 0; from < n; ++from) {
    for (ProcessId to = 0; to < n; ++to) {
      auto& parked = blocked_[static_cast<std::size_t>(from) * n + to];
      if (parked.empty() || lan_.link_blocked(from, to)) continue;
      std::vector<std::shared_ptr<const std::string>> batch;
      batch.swap(parked);
      for (const auto& bytes : batch) {
        deliver_transport(from, to, events_.now(), bytes);
      }
    }
  }
}

void AbcastWorld::release_paused(ProcessId p) {
  if (paused_work_[p].empty()) return;
  auto work = std::make_shared<std::vector<std::function<void()>>>(
      std::move(paused_work_[p]));
  paused_work_[p] = {};
  events_.at(events_.now(), [this, p, work] {
    for (auto& fn : *work) run_on_node(p, fn);
  });
}

bool AbcastWorld::workload_complete() const {
  if (submitted_ < cfg_.message_count) return false;
  for (const Node& node : nodes_) {
    if (node.crashed) continue;
    // delivered ⊆ expected always holds, so size equality means coverage.
    if (node.delivered.size() < expected_.size()) return false;
  }
  return true;
}

AbcastRunResult AbcastWorld::run() {
  AbcastRunResult result;
  std::uint64_t executed = 0;
  while (executed < cfg_.event_limit && !events_.empty() &&
         events_.now() <= cfg_.time_limit_ms) {
    events_.run_next();
    ++executed;
    if (workload_complete()) break;
  }
  result.events_executed = executed;
  result.duration_ms = events_.now();

  // Latency samples (post-warmup messages that were delivered).
  const auto warmup_cutoff = static_cast<std::uint32_t>(
      cfg_.warmup_fraction * static_cast<double>(cfg_.message_count));
  obs::Histogram* latency_hist =
      cfg_.metrics == nullptr
          ? nullptr
          : &cfg_.metrics->histogram("zdc_sim_delivery_latency_ms", {});
  for (const auto& [id, tr] : tracked_) {
    if (tr.index < warmup_cutoff) continue;
    if (tr.first_delivery >= 0.0) {
      result.latency_ms.add(tr.first_delivery - tr.broadcast_time);
      // tracked_ is an ordered map, so histogram sums accumulate in a
      // deterministic order — part of the byte-identical-export contract.
      if (latency_hist != nullptr) {
        latency_hist->observe(tr.first_delivery - tr.broadcast_time);
      }
    }
    if (tr.sender_delivery >= 0.0) {
      result.sender_latency_ms.add(tr.sender_delivery - tr.broadcast_time);
    }
  }

  // Property checks over the complete histories.
  std::set<abcast::MsgId> delivered_union;
  for (Node& node : nodes_) {
    if (node.duplicate_delivery) result.integrity_ok = false;
    for (const abcast::MsgId& id : node.history) {
      if (tracked_.find(id) == tracked_.end()) result.integrity_ok = false;
      delivered_union.insert(id);
    }
  }
  result.delivered_unique = delivered_union.size();

  // Total order: pairwise prefix consistency of delivery histories.
  for (std::size_t a = 0; a < nodes_.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes_.size(); ++b) {
      const auto& ha = nodes_[a].history;
      const auto& hb = nodes_[b].history;
      const std::size_t common_len = std::min(ha.size(), hb.size());
      for (std::size_t i = 0; i < common_len; ++i) {
        if (ha[i] != hb[i]) {
          result.total_order_ok = false;
          break;
        }
      }
    }
  }

  // Agreement / validity: every correct process holds every expected message.
  for (Node& node : nodes_) {
    if (node.crashed) continue;
    for (const abcast::MsgId& id : expected_) {
      if (node.delivered.find(id) == node.delivered.end()) {
        ++result.undelivered;
        result.agreement_ok = false;
      }
    }
  }

  ProcessId metric_p = 0;
  for (Node& node : nodes_) {
    node.protocol->finalize_metrics();
    const abcast::AbcastMetrics& m = node.protocol->metrics();
    result.totals.a_broadcasts += m.a_broadcasts;
    result.totals.a_deliveries += m.a_deliveries;
    result.totals.w_broadcasts += m.w_broadcasts;
    result.totals.consensus_instances += m.consensus_instances;
    result.totals.transport += m.transport;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->counter("zdc_sim_rounds_total", obs::process_label(metric_p))
          .inc(m.consensus_instances);
    }
    ++metric_p;
  }
  result.histories.reserve(nodes_.size());
  for (Node& node : nodes_) result.histories.push_back(std::move(node.history));
  return result;
}

}  // namespace

SimAbcastFactory abcast_factory_by_name(const std::string& name) {
  if (name == "c-l") {
    return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
              const fd::OmegaView& omega, const fd::SuspectView&) {
      return abcast::make_c_abcast_l(self, group, host, omega);
    };
  }
  if (name == "c-p") {
    return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
              const fd::OmegaView&, const fd::SuspectView& suspects) {
      return abcast::make_c_abcast_p(self, group, host, suspects);
    };
  }
  if (name == "wabcast") {
    return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
              const fd::OmegaView&, const fd::SuspectView&) {
      return abcast::make_wabcast(self, group, host);
    };
  }
  if (name == "paxos") {
    return [](ProcessId self, GroupParams group, abcast::AbcastHost& host,
              const fd::OmegaView& omega, const fd::SuspectView&) {
      return std::make_unique<abcast::PaxosAbcast>(self, group, host, omega);
    };
  }
  ZDC_ASSERT_MSG(false, "unknown abcast protocol name");
  return {};
}

AbcastRunResult run_abcast(const AbcastRunConfig& cfg,
                           const SimAbcastFactory& factory) {
  AbcastWorld world(cfg, factory);
  return world.run();
}

}  // namespace zdc::sim
