// Structured run tracing for the simulator worlds.
//
// A TraceRecorder attached to a run config captures every interesting event
// (proposals, sends, deliveries, oracle traffic, decisions, crashes, FD
// changes) with its simulated timestamp. Uses:
//
//   * debugging: replay a failing seed with tracing on and read the run;
//   * verification: the causal-consistency checker proves every delivery is
//     explainable by an earlier send on the same edge (the simulator's
//     network cannot invent or duplicate messages);
//   * presentation: render_spacetime() draws the run as an ASCII space-time
//     diagram, one lane per process (see examples/trace_run.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace zdc::sim {

enum class TraceKind : std::uint8_t {
  kPropose,     ///< subject proposed / a-broadcast (detail = value)
  kSend,        ///< subject sent a transport message to peer
  kDeliver,     ///< subject received a transport message from peer
  kWabSend,     ///< subject w-broadcast an oracle datagram
  kWabDeliver,  ///< subject w-delivered an oracle datagram from peer
  kDecide,      ///< subject decided / a-delivered (detail = value)
  kCrash,       ///< subject crashed
  kFdChange,    ///< subject's failure-detector output changed
  kFault,       ///< nemesis action applied (detail = the action's text form)
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TimePoint time = 0.0;
  TraceKind kind = TraceKind::kSend;
  ProcessId subject = 0;
  ProcessId peer = kNoProcess;
  std::string detail;
};

class TraceRecorder {
 public:
  void record(TimePoint time, TraceKind kind, ProcessId subject,
              ProcessId peer = kNoProcess, std::string detail = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(TraceKind kind) const;
  void clear() { events_.clear(); }

  /// Every delivery on an edge must be matchable to a distinct earlier send
  /// on the same edge (checked via the sorted-interval matching criterion:
  /// deliveries_on_edge <= sends_on_edge and the k-th earliest delivery is
  /// no earlier than the k-th earliest send).
  [[nodiscard]] bool causally_consistent() const;

  /// ASCII space-time diagram: one column lane per process, one row per
  /// event of the selected kinds, in time order. `kinds` empty = the
  /// high-level kinds (propose/decide/crash/fd-change).
  [[nodiscard]] std::string render_spacetime(
      std::uint32_t n, std::size_t max_rows = 200,
      const std::vector<TraceKind>& kinds = {}) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace zdc::sim
