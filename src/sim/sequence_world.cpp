#include "sim/sequence_world.h"

#include <map>
#include <memory>
#include <utility>

#include "common/assert.h"
#include "common/codec.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "sim/fd_sim.h"
#include "sim/lan_model.h"

namespace zdc::sim {

namespace {

/// Like ConsensusWorld, but instances are created in sequence and their
/// traffic is wrapped in an instance-id envelope.
class SequenceWorld {
 public:
  SequenceWorld(const SequenceConfig& cfg, const SimConsensusFactory& factory)
      : cfg_(cfg),
        factory_(factory),
        rng_(cfg.seed),
        lan_(cfg.net, cfg.group.n, rng_.fork(0x44)),
        proposal_rng_(rng_.fork(0x55)),
        fd_(cfg.fd, cfg.group.n, events_,
            [this](ProcessId p) { notify_fd_change(p); }) {
    crashed_.assign(cfg.group.n, false);
    fd_.initialize(std::vector<bool>(cfg.group.n, false));
    if (cfg_.metrics != nullptr) {
      for (ProcessId p = 0; p < cfg_.group.n; ++p) {
        sent_ctrs_.push_back(&cfg_.metrics->counter(
            "zdc_sim_messages_sent_total", obs::process_label(p)));
        decision_ctrs_.push_back(&cfg_.metrics->counter(
            "zdc_sim_decisions_total", obs::process_label(p)));
      }
      decision_latency_ =
          &cfg_.metrics->histogram("zdc_sim_decision_latency_ms", {});
    }
  }

  SequenceResult run();

 private:
  struct Host final : consensus::ConsensusHost {
    Host(SequenceWorld& world, ProcessId self, std::uint32_t instance)
        : world_(world), self_(self), instance_(instance) {}
    void send(ProcessId to, std::string bytes) override {
      world_.unicast(self_, to, wrap(std::move(bytes)));
    }
    void broadcast(std::string bytes) override {
      std::string framed = wrap(std::move(bytes));
      for (ProcessId to = 0; to < world_.cfg_.group.n; ++to) {
        world_.unicast(self_, to, framed);
      }
    }
    void deliver_decision(const Value& v) override {
      world_.record_decision(instance_, self_, v);
    }
    [[nodiscard]] std::string wrap(std::string bytes) const {
      common::Encoder enc;
      enc.put_u64(instance_);
      enc.put_raw(bytes);
      return enc.take();
    }
    SequenceWorld& world_;
    ProcessId self_;
    std::uint32_t instance_;
  };

  struct ProcessInstance {
    std::unique_ptr<Host> host;
    std::unique_ptr<consensus::Consensus> protocol;
    bool decided = false;
    Value decision;
  };

  struct Instance {
    std::vector<ProcessInstance> procs;
    InstanceStats stats;
    std::uint32_t undecided_correct = 0;
    common::OnlineStats steps;
    bool started = false;
  };

  void start_instance(std::uint32_t index);
  void unicast(ProcessId from, ProcessId to, std::string framed);
  void record_decision(std::uint32_t instance, ProcessId p, const Value& v);
  void maybe_complete(std::uint32_t instance);
  void notify_fd_change(ProcessId p);
  void crash(ProcessId p);

  const SequenceConfig& cfg_;
  const SimConsensusFactory& factory_;
  common::Rng rng_;
  EventQueue events_;
  LanModel lan_;
  common::Rng proposal_rng_;
  FdSim fd_;
  std::vector<bool> crashed_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::uint32_t current_ = 0;
  bool finished_ = false;
  // Pre-registered handles (empty/null when cfg.metrics is null). Counter
  // bumps never touch the RNG or event queue, so schedules are unchanged.
  std::vector<obs::Counter*> sent_ctrs_;
  std::vector<obs::Counter*> decision_ctrs_;
  obs::Histogram* decision_latency_ = nullptr;
};

void SequenceWorld::start_instance(std::uint32_t index) {
  if (index >= cfg_.instances) {
    finished_ = true;
    return;
  }
  // Injected crash at this boundary.
  if (cfg_.crash_process != kNoProcess && index == cfg_.crash_before_instance) {
    crash(cfg_.crash_process);
  }

  current_ = index;
  while (instances_.size() <= index) {
    instances_.push_back(std::make_unique<Instance>());
  }
  Instance& inst = *instances_[index];
  inst.started = true;
  inst.stats.start_time = events_.now();
  inst.procs.resize(cfg_.group.n);

  for (ProcessId p = 0; p < cfg_.group.n; ++p) {
    ProcessInstance& pi = inst.procs[p];
    pi.host = std::make_unique<Host>(*this, p, index);
    pi.protocol = factory_(p, cfg_.group, *pi.host, fd_.omega_view(p),
                           fd_.suspect_view(p));
    if (!crashed_[p]) ++inst.undecided_correct;
  }
  for (ProcessId p = 0; p < cfg_.group.n; ++p) {
    if (crashed_[p]) continue;
    const Value proposal =
        cfg_.divergent_proposals
            ? "v" + std::to_string(proposal_rng_.next_below(cfg_.group.n)) +
                  "-p" + std::to_string(p)
            : "agreed";
    // Propose via an event so instance construction never recurses into
    // message delivery.
    events_.after(0.0, [this, index, p, proposal] {
      if (!crashed_[p]) {
        detail::AssertContextScope scope(p, events_.now());
        instances_[index]->procs[p].protocol->propose(proposal);
      }
    });
  }
}

void SequenceWorld::unicast(ProcessId from, ProcessId to, std::string framed) {
  if (crashed_[from]) return;
  if (!sent_ctrs_.empty()) sent_ctrs_[from]->inc();
  auto payload = std::make_shared<const std::string>(std::move(framed));
  const TimePoint sent = lan_.occupy_sender_cpu(from, events_.now());
  const TimePoint tx_end =
      from == to ? sent : lan_.occupy_medium(sent, payload->size());
  const TimePoint arrival =
      from == to ? lan_.local_delivery(sent) : lan_.arrival_time(tx_end);
  events_.at(arrival, [this, from, to, payload] {
    if (crashed_[to]) return;
    const TimePoint handled = lan_.occupy_receiver_cpu(to, events_.now());
    events_.at(handled, [this, from, to, payload] {
      if (crashed_[to]) return;
      common::Decoder dec(*payload);
      const std::uint64_t instance = dec.get_u64();
      if (!dec.ok() || instance >= instances_.size()) return;
      Instance& inst = *instances_[instance];
      if (inst.procs.empty()) return;
      auto& pi = inst.procs[to];
      if (pi.protocol != nullptr && !pi.decided) {
        detail::AssertContextScope scope(to, events_.now());
        pi.protocol->on_message(from, dec.get_rest());
      }
    });
  });
}

void SequenceWorld::record_decision(std::uint32_t instance, ProcessId p,
                                    const Value& v) {
  Instance& inst = *instances_[instance];
  ProcessInstance& pi = inst.procs[p];
  if (pi.decided) return;
  pi.decided = true;
  pi.decision = v;

  const TimePoint rel = events_.now() - inst.stats.start_time;
  if (!decision_ctrs_.empty()) {
    decision_ctrs_[p]->inc();
    decision_latency_->observe(rel);
  }
  if (inst.stats.first_decision == 0.0 || rel < inst.stats.first_decision) {
    inst.stats.first_decision = rel;
  }
  inst.stats.last_decision = std::max(inst.stats.last_decision, rel);
  if (pi.protocol->decision_path() == consensus::DecisionPath::kRound) {
    inst.steps.add(pi.protocol->decision_steps());
  }

  // Agreement across deciders of this instance.
  for (const auto& other : inst.procs) {
    if (other.decided && other.decision != v) inst.stats.safe = false;
  }

  if (!crashed_[p] && inst.undecided_correct > 0) {
    --inst.undecided_correct;
    maybe_complete(instance);
  }
}

void SequenceWorld::maybe_complete(std::uint32_t instance) {
  Instance& inst = *instances_[instance];
  if (inst.stats.complete || !inst.started || inst.undecided_correct != 0 ||
      instance != current_) {
    return;
  }
  inst.stats.complete = true;
  inst.stats.mean_steps = inst.steps.mean();
  // Barrier: the next instance starts now.
  events_.after(0.0, [this, next = instance + 1] { start_instance(next); });
}

void SequenceWorld::notify_fd_change(ProcessId p) {
  if (crashed_[p]) return;
  for (auto& inst : instances_) {
    if (!inst->procs.empty() && inst->procs[p].protocol != nullptr &&
        !inst->procs[p].decided) {
      inst->procs[p].protocol->on_fd_change();
    }
  }
}

void SequenceWorld::crash(ProcessId p) {
  if (crashed_[p]) return;
  crashed_[p] = true;
  // Undecided-correct bookkeeping for the in-flight instance.
  for (std::uint32_t i = 0; i < instances_.size(); ++i) {
    auto& inst = *instances_[i];
    if (inst.started && !inst.stats.complete && !inst.procs.empty() &&
        !inst.procs[p].decided && inst.undecided_correct > 0) {
      --inst.undecided_correct;
      maybe_complete(i);
    }
  }
  fd_.on_crash(p);
}

SequenceResult SequenceWorld::run() {
  events_.after(0.0, [this] { start_instance(0); });
  std::uint64_t executed = 0;
  while (!finished_ && executed < cfg_.event_limit && !events_.empty() &&
         events_.now() <= cfg_.time_limit_ms) {
    events_.run_next();
    ++executed;
  }

  SequenceResult result;
  for (const auto& inst : instances_) {
    result.instances.push_back(inst->stats);
    result.all_complete = result.all_complete && inst->stats.complete;
    result.all_safe = result.all_safe && inst->stats.safe;
  }
  result.all_complete =
      result.all_complete && result.instances.size() == cfg_.instances;
  return result;
}

}  // namespace

SequenceResult run_consensus_sequence(const SequenceConfig& cfg,
                                      const SimConsensusFactory& factory) {
  SequenceWorld world(cfg, factory);
  return world.run();
}

}  // namespace zdc::sim
