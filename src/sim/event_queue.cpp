#include "sim/event_queue.h"

#include <utility>

namespace zdc::sim {

void EventQueue::at(TimePoint t, Action fn) {
  if (t < now_) t = now_;  // no scheduling into the past
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].fn = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
    pool_[slot].fn = std::move(fn);
  }
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  // Move the handler out and free its slot *before* invoking: the handler may
  // schedule new events, which must be able to reuse pool storage (and may
  // reallocate the slab, so no reference into pool_ survives past here).
  Action fn = std::move(pool_[top.slot].fn);
  pool_[top.slot].fn.reset();
  pool_[top.slot].next_free = free_head_;
  free_head_ = top.slot;
  now_ = top.time;
  fn();
  return true;
}

std::uint64_t EventQueue::run(TimePoint time_limit, std::uint64_t event_limit) {
  std::uint64_t executed = 0;
  while (executed < event_limit && !heap_.empty() &&
         heap_.front().time <= time_limit) {
    run_next();
    ++executed;
  }
  return executed;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && earlier(heap_[l], heap_[best])) best = l;
    if (r < n && earlier(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace zdc::sim
