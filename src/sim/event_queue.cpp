#include "sim/event_queue.h"

#include <utility>

namespace zdc::sim {

void EventQueue::at(TimePoint t, Action fn) {
  if (t < now_) t = now_;  // no scheduling into the past
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast on the handler
  // only, which is safe because pop() immediately destroys the slot.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run(TimePoint time_limit, std::uint64_t event_limit) {
  std::uint64_t executed = 0;
  while (executed < event_limit && !queue_.empty() &&
         queue_.top().time <= time_limit) {
    run_next();
    ++executed;
  }
  return executed;
}

}  // namespace zdc::sim
