// Shared metric registration for the sim worlds.
//
// Both worlds funnel every structured event through their trace() helper;
// instrumentation piggybacks on the same funnel: one pre-registered counter
// per (TraceKind, process), nullptr when metrics are off. Registration
// happens once per world build, so the per-event cost is a pointer check
// plus a relaxed fetch_add — the sim's RNG and event queue are never
// touched, which is why enabling metrics cannot perturb golden traces.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "sim/trace.h"

namespace zdc::sim {

/// Counter handles indexed [kind][process]; empty vectors = metrics off.
using KindCounters =
    std::array<std::vector<obs::Counter*>, 9>;  // one slot per TraceKind

/// Metric family for each structured event kind. The names are the sim half
/// of the catalog in docs/OBSERVABILITY.md.
inline const char* trace_kind_family(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPropose: return "zdc_sim_proposals_total";
    case TraceKind::kSend: return "zdc_sim_messages_sent_total";
    case TraceKind::kDeliver: return "zdc_sim_messages_delivered_total";
    case TraceKind::kWabSend: return "zdc_sim_wab_sent_total";
    case TraceKind::kWabDeliver: return "zdc_sim_wab_delivered_total";
    case TraceKind::kDecide: return "zdc_sim_decisions_total";
    case TraceKind::kCrash: return "zdc_sim_crashes_total";
    case TraceKind::kFdChange: return "zdc_sim_fd_changes_total";
    case TraceKind::kFault: return "zdc_sim_faults_total";
  }
  return "zdc_sim_unknown_total";
}

/// Pre-registers one counter per (kind, process). Returns empty vectors when
/// `registry` is null so the per-event hook stays a single branch.
inline KindCounters register_kind_counters(obs::MetricsRegistry* registry,
                                           std::uint32_t n) {
  KindCounters out;
  if (registry == nullptr) return out;
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k].resize(n);
    for (ProcessId p = 0; p < n; ++p) {
      out[k][p] = &registry->counter(
          trace_kind_family(static_cast<TraceKind>(k)),
          obs::process_label(p));
    }
  }
  return out;
}

/// The per-event hook next to trace(): bumps the (kind, subject) counter.
inline void note_kind(const KindCounters& counters, TraceKind kind,
                      ProcessId subject) {
  const auto k = static_cast<std::size_t>(kind);
  if (counters[k].empty() || subject >= counters[k].size()) return;
  counters[k][subject]->inc();
}

}  // namespace zdc::sim
