// Calibrated LAN timing model (the testbed substitution, DESIGN.md §2).
//
// The paper's cluster is 4 workstations on a switched 100 Mbit LAN running a
// Java middleware. Three resources dominate latency there and are modelled
// here explicitly:
//
//   1. per-process CPU: every send and every receive occupies the host CPU
//      for a fixed cost (protocol stack + middleware), serializing a
//      process's message handling — the main queueing effect at high
//      throughput;
//   2. the shared medium: each unicast transmission occupies the network for
//      size/bandwidth (broadcast-capable UDP used by the WAB oracle occupies
//      it once per broadcast);
//   3. propagation/OS jitter: a base delay plus exponential per-receiver
//      jitter. Jitter is what occasionally *reorders* two nearly-simultaneous
//      broadcasts at different receivers — i.e. it produces the WAB oracle's
//      collisions, whose rate grows with load exactly as in Pedone &
//      Schiper's observations.
//
// The model computes, for each message, its delivery time at each receiver;
// the ConsensusWorld/AbcastWorld schedule delivery events accordingly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/link_policy.h"

namespace zdc::sim {

struct NetworkConfig {
  double base_delay_ms = 0.08;       ///< propagation + kernel/network stack
  double jitter_mean_ms = 0.03;      ///< exponential per-receiver jitter
  double bandwidth_mbps = 100.0;     ///< shared-medium capacity
  std::uint32_t framing_bytes = 66;  ///< Ethernet/IP/TCP framing overhead
  double cpu_send_ms = 0.020;        ///< per-message middleware cost, sender
  double cpu_recv_ms = 0.020;        ///< per-message middleware cost, receiver
  double local_delivery_ms = 0.005;  ///< loopback self-delivery
  double wab_loss_prob = 0.0;        ///< per-receiver loss of oracle datagrams
  /// Extra per-receiver delay, uniform in [0, x], on oracle datagrams only:
  /// unacknowledged UDP multicast rides NIC/driver queues that TCP's paced
  /// streams do not, so two bursts sent close together may be seen in
  /// different orders by different hosts. This is the collision source whose
  /// rate grows with broadcast concurrency (Pedone & Schiper's observation);
  /// TCP protocol hops keep the tight `jitter_mean_ms` only.
  double wab_extra_jitter_ms = 0.0;
  /// Modeled retransmission quantum for the reliable (TCP-like) channels
  /// under nemesis-injected link loss: each lost attempt costs one RTO before
  /// the next try, so a link with drop probability d adds a geometric number
  /// of these quanta to the delivery time (the message is never lost — the
  /// stack keeps retrying, matching real TCP under moderate loss).
  double reliable_retransmit_ms = 2.0;
};

/// The constants used by all paper-reproduction benches, in one place:
/// loosely calibrated to the paper's testbed (2.8 GHz workstations running a
/// Java middleware on a 100 Mbit switched LAN; Sec. 8.1) so that absolute
/// latencies land in the same 1–5 ms band and the collision rate grows with
/// throughput the way Figure 2 implies.
inline NetworkConfig calibrated_lan_2006() {
  NetworkConfig net;
  net.base_delay_ms = 0.45;
  net.jitter_mean_ms = 0.03;
  net.bandwidth_mbps = 100.0;
  net.framing_bytes = 66;
  net.cpu_send_ms = 0.030;
  net.cpu_recv_ms = 0.030;
  // Messages to self traverse the same middleware/stack path as remote ones
  // (the Neko model): no self-delivery shortcut, so Paxos really pays its 3δ
  // and the lower-bound step counts translate 1:1 into wall-clock δs.
  net.local_delivery_ms = 0.4;
  // UDP oracle datagrams ride unpaced NIC/driver queues: extra uniform
  // disorder that flips the relative order of near-simultaneous broadcasts —
  // spontaneous order holds at low load and decays with concurrency.
  net.wab_extra_jitter_ms = 0.6;
  return net;
}

/// A wide-area profile (not in the paper — an extension experiment): 20 ms
/// propagation with millisecond jitter. Propagation dwarfs CPU and
/// serialization, so protocol *step counts* translate almost directly into
/// latency — the regime where saving one communication step matters most,
/// and where spontaneous order is essentially gone (jitter >> send gaps).
inline NetworkConfig synthetic_wan() {
  NetworkConfig net;
  net.base_delay_ms = 20.0;
  net.jitter_mean_ms = 1.5;
  net.bandwidth_mbps = 1000.0;
  net.framing_bytes = 66;
  net.cpu_send_ms = 0.02;
  net.cpu_recv_ms = 0.02;
  net.local_delivery_ms = 0.05;
  net.wab_extra_jitter_ms = 8.0;  // WAN reordering: collisions are the norm
  return net;
}

/// Tracks medium and CPU occupancy and samples delivery times.
class LanModel {
 public:
  LanModel(NetworkConfig cfg, std::uint32_t n, common::Rng rng)
      : cfg_(cfg), cpu_free_(n, 0.0), rng_(rng) {}

  /// Sender-side cost of putting one message on the wire at time `now`:
  /// returns the time the message has fully left the process.
  TimePoint occupy_sender_cpu(ProcessId from, TimePoint now);

  /// Occupies the shared medium for one frame of `payload_bytes`; returns the
  /// transmission end time.
  TimePoint occupy_medium(TimePoint ready, std::size_t payload_bytes);

  /// Arrival time at one receiver given the transmission end time.
  TimePoint arrival_time(TimePoint tx_end);

  /// Arrival time for an oracle datagram (adds the UDP disorder jitter).
  TimePoint wab_arrival_time(TimePoint tx_end);

  /// Receiver-side processing: returns the time the protocol handler runs for
  /// a message that arrived at `arrival`.
  TimePoint occupy_receiver_cpu(ProcessId to, TimePoint arrival);

  /// Self-delivery (no medium).
  TimePoint local_delivery(TimePoint sent) const {
    return sent + cfg_.local_delivery_ms;
  }

  [[nodiscard]] bool drop_wab_datagram() {
    return cfg_.wab_loss_prob > 0.0 && rng_.chance(cfg_.wab_loss_prob);
  }

  /// Attaches the nemesis link table (not owned; may be null = no faults).
  /// All link verdict methods below consult it.
  void set_link_policy(const fault::LinkPolicy* policy) { policy_ = policy; }

  /// True while the (from, to) link is cut by a partition/isolation. Reliable
  /// traffic must *wait out* the cut (the world parks it and re-injects on
  /// heal); best-effort oracle datagrams on a cut link are simply lost.
  [[nodiscard]] bool link_blocked(ProcessId from, ProcessId to) const {
    return policy_ != nullptr && policy_->link(from, to).blocked;
  }

  /// Extra delivery delay on a reliable channel from injected degradation:
  /// the scripted delay spike plus a geometric retransmission penalty for
  /// drop_prob (TCP retries; the message still arrives). Consumes randomness
  /// only when the link actually carries a fault, preserving byte-identical
  /// schedules for fault-free runs of the same seed.
  [[nodiscard]] TimePoint reliable_link_penalty_ms(ProcessId from,
                                                   ProcessId to);

  /// Best-effort verdicts for oracle datagrams on a degraded link: loss is
  /// real loss (no retransmission), delay spikes apply as-is.
  [[nodiscard]] bool drop_best_effort(ProcessId from, ProcessId to);
  [[nodiscard]] TimePoint best_effort_extra_delay_ms(ProcessId from,
                                                     ProcessId to) const;

  /// Corruption verdicts (FaultPlan flip/scorrupt budgets), drawn on the
  /// reliable-channel delivery path: true iff the next frame on (from, to)
  /// must be byte-flipped per `*spec`. Draws down the finite LinkPolicy
  /// budget — at most `count` frames per armed fault are ever corrupted.
  [[nodiscard]] bool consume_corruption(ProcessId from, ProcessId to,
                                        fault::CorruptSpec* spec) const {
    return policy_ != nullptr && policy_->consume_corruption(from, to, spec);
  }

  /// Equivocation verdict (FaultPlan equivocate budget), drawn once per
  /// broadcast at the sender: true iff this broadcast must also deliver a
  /// divergent duplicate to every remote receiver.
  [[nodiscard]] bool consume_equivocation(ProcessId from) const {
    return policy_ != nullptr && policy_->consume_equivocation(from);
  }

  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

 private:
  NetworkConfig cfg_;
  TimePoint medium_free_ = 0.0;
  std::vector<TimePoint> cpu_free_;
  common::Rng rng_;
  const fault::LinkPolicy* policy_ = nullptr;
};

}  // namespace zdc::sim
