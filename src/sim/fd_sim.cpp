#include "sim/fd_sim.h"

#include <algorithm>

#include "common/assert.h"

namespace zdc::sim {

struct FdSim::ProcessView {
  struct Omega final : fd::OmegaView {
    [[nodiscard]] ProcessId leader() const override { return current_leader; }
    ProcessId current_leader = kNoProcess;
  };
  struct Suspects final : fd::SuspectView {
    [[nodiscard]] bool suspects(ProcessId p) const override {
      return p < flags.size() && flags[p];
    }
    std::vector<bool> flags;
  };
  Omega omega;
  Suspects suspects;
};

FdSim::FdSim(FdConfig cfg, std::uint32_t n, EventQueue& events,
             std::function<void(ProcessId)> on_change)
    : cfg_(std::move(cfg)),
      n_(n),
      events_(events),
      on_change_(std::move(on_change)),
      crashed_(n, false),
      paused_(n, false),
      pause_epoch_(n, 0) {
  views_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto view = std::make_unique<ProcessView>();
    view->suspects.flags.assign(n, false);
    views_.push_back(std::move(view));
  }
}

FdSim::~FdSim() = default;

void FdSim::initialize(const std::vector<bool>& initially_crashed) {
  ZDC_ASSERT(initially_crashed.size() == n_);
  crashed_ = initially_crashed;

  std::vector<ProcessId> suspected;
  for (ProcessId p = 0; p < n_; ++p) {
    if (initially_crashed[p]) suspected.push_back(p);
  }
  ProcessId lowest_correct = kNoProcess;
  for (ProcessId p = 0; p < n_; ++p) {
    if (!initially_crashed[p]) {
      lowest_correct = p;
      break;
    }
  }

  switch (cfg_.mode) {
    case FdMode::kStable: {
      ProcessId leader = cfg_.stable_leader != kNoProcess ? cfg_.stable_leader
                                                          : lowest_correct;
      apply(kNoProcess, leader, suspected);
      break;
    }
    case FdMode::kCrashTracking: {
      // At t=0 nothing is suspected yet; initial crashes are detected after
      // the detection delay (the paper's "recovery run" shape).
      apply(kNoProcess, 0, {});
      for (ProcessId p = 0; p < n_; ++p) {
        if (initially_crashed[p]) on_crash(p);
      }
      break;
    }
    case FdMode::kScripted: {
      // Outputs before the first scripted event: leader 0, nobody suspected.
      apply(kNoProcess, 0, {});
      for (const FdScriptEvent& ev : cfg_.script) {
        events_.at(ev.time, [this, ev] { apply(ev.observer, ev.leader, ev.suspected); });
      }
      break;
    }
  }
}

void FdSim::on_crash(ProcessId crashed) {
  ZDC_ASSERT(crashed < n_);
  crashed_[crashed] = true;
  if (cfg_.mode != FdMode::kCrashTracking) return;
  events_.after(cfg_.detection_delay_ms,
                [this, crashed] { suspect_everywhere(crashed); });
}

void FdSim::on_pause(ProcessId p) {
  ZDC_ASSERT(p < n_);
  paused_[p] = true;
  if (cfg_.mode != FdMode::kCrashTracking) return;
  const std::uint64_t epoch = ++pause_epoch_[p];
  events_.after(cfg_.detection_delay_ms, [this, p, epoch] {
    // Still paused and no newer pause/resume superseded us: the timeout
    // expires and the detector *falsely* suspects a live process — exactly
    // the ◇P misbehaviour indulgent protocols must tolerate.
    if (paused_[p] && pause_epoch_[p] == epoch) suspect_everywhere(p);
  });
}

void FdSim::on_resume(ProcessId p) {
  ZDC_ASSERT(p < n_);
  paused_[p] = false;
  if (cfg_.mode != FdMode::kCrashTracking) return;
  const std::uint64_t epoch = ++pause_epoch_[p];
  events_.after(cfg_.detection_delay_ms, [this, p, epoch] {
    if (!paused_[p] && !crashed_[p] && pause_epoch_[p] == epoch) {
      unsuspect_everywhere(p);
    }
  });
}

void FdSim::on_restart(ProcessId p) {
  ZDC_ASSERT(p < n_);
  crashed_[p] = false;
  if (cfg_.mode != FdMode::kCrashTracking) return;
  const std::uint64_t epoch = ++pause_epoch_[p];
  events_.after(cfg_.detection_delay_ms, [this, p, epoch] {
    if (!paused_[p] && !crashed_[p] && pause_epoch_[p] == epoch) {
      unsuspect_everywhere(p);
    }
  });
}

void FdSim::suspect_everywhere(ProcessId p) {
  // Every alive observer adds `p` to its suspect set; the leader is
  // recomputed as the lowest non-suspected process (the Ω reduction).
  for (ProcessId observer = 0; observer < n_; ++observer) {
    auto& view = *views_[observer];
    if (view.suspects.flags[p]) continue;
    view.suspects.flags[p] = true;
    ProcessId leader = kNoProcess;
    for (ProcessId q = 0; q < n_; ++q) {
      if (!view.suspects.flags[q]) {
        leader = q;
        break;
      }
    }
    view.omega.current_leader = leader;
    if (on_change_) on_change_(observer);
  }
}

void FdSim::unsuspect_everywhere(ProcessId p) {
  for (ProcessId observer = 0; observer < n_; ++observer) {
    auto& view = *views_[observer];
    if (!view.suspects.flags[p]) continue;
    view.suspects.flags[p] = false;
    ProcessId leader = kNoProcess;
    for (ProcessId q = 0; q < n_; ++q) {
      if (!view.suspects.flags[q]) {
        leader = q;
        break;
      }
    }
    view.omega.current_leader = leader;
    if (on_change_) on_change_(observer);
  }
}

void FdSim::apply(ProcessId observer, ProcessId leader,
                  const std::vector<ProcessId>& suspected) {
  std::vector<bool> flags(n_, false);
  for (ProcessId p : suspected) {
    if (p < n_) flags[p] = true;
  }
  const ProcessId first = observer == kNoProcess ? 0 : observer;
  const ProcessId last = observer == kNoProcess ? n_ - 1 : observer;
  for (ProcessId obs = first; obs <= last && obs < n_; ++obs) {
    auto& view = *views_[obs];
    const bool changed =
        view.omega.current_leader != leader || view.suspects.flags != flags;
    view.omega.current_leader = leader;
    view.suspects.flags = flags;
    if (changed && on_change_) on_change_(obs);
  }
}

const fd::OmegaView& FdSim::omega_view(ProcessId p) const {
  ZDC_ASSERT(p < n_);
  return views_[p]->omega;
}

const fd::SuspectView& FdSim::suspect_view(ProcessId p) const {
  ZDC_ASSERT(p < n_);
  return views_[p]->suspects;
}

}  // namespace zdc::sim
