// Discrete-event scheduler: the heart of the deterministic simulator.
//
// Events fire in (time, insertion-sequence) order, so two events at the same
// timestamp run in the order they were scheduled — together with the seeded
// Rng this makes every simulated run exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace zdc::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (>= now, clamped otherwise).
  void at(TimePoint t, Action fn);
  /// Schedules `fn` `delay` after now.
  void after(Duration delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the next event; returns false when the queue is empty.
  bool run_next();

  /// Runs events until the queue drains, `time_limit` is passed, or
  /// `event_limit` events have run. Returns the number of events executed.
  std::uint64_t run(TimePoint time_limit, std::uint64_t event_limit);

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace zdc::sim
