// Discrete-event scheduler: the heart of the deterministic simulator.
//
// Events fire in (time, insertion-sequence) order, so two events at the same
// timestamp run in the order they were scheduled — together with the seeded
// Rng this makes every simulated run exactly reproducible.
//
// Storage is a pooled/indexed event store: handlers live in a slab of
// recycled slots (common::InlineAction, so small captures never touch the
// heap) and the ordering heap holds only 24-byte {time, seq, slot} records.
// Compared to the former std::priority_queue<std::function> this removes the
// per-event allocation and shrinks every heap swap to a POD move; scheduling
// order and tie-breaking are unchanged (see tests/golden_trace_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_action.h"
#include "common/types.h"

namespace zdc::sim {

class EventQueue {
 public:
  using Action = common::InlineAction;

  /// Schedules `fn` at absolute time `t` (>= now, clamped otherwise).
  void at(TimePoint t, Action fn);
  /// Schedules `fn` `delay` after now.
  void after(Duration delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the next event; returns false when the queue is empty.
  bool run_next();

  /// Runs events until the queue drains, `time_limit` is passed, or
  /// `event_limit` events have run. Returns the number of events executed.
  std::uint64_t run(TimePoint time_limit, std::uint64_t event_limit);

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Slots ever allocated in the pool (== peak pending, not live events);
  /// exposed so tests can prove slots are recycled rather than grown.
  [[nodiscard]] std::size_t pool_capacity() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kNilSlot = ~std::uint32_t{0};

  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Action fn;
    std::uint32_t next_free = kNilSlot;
  };

  /// True iff `a` fires strictly before `b`.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Slot> pool_;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<HeapEntry> heap_;  ///< binary min-heap over earlier()
  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace zdc::sim
