// Repeated-consensus harness: runs a back-to-back *sequence* of consensus
// instances, the execution pattern that motivates zero-degradation (paper
// Sec. 1: "failures that occur in one run propagate as initial failures to
// all subsequent runs, [so] we are interested in algorithms whose
// performance is not permanently affected by initial failures").
//
// Instance i+1 starts (every correct process proposes) as soon as every
// correct process decided instance i. A crash can be injected at a given
// instance boundary; the per-instance latency/step series then shows which
// protocols pay a one-time recovery blip and which degrade permanently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/consensus_world.h"

namespace zdc::sim {

/// Inherits the shared group/net/fd/seed block from zdc::RunOptions — see
/// obs/run_options.h for the fluent builder.
struct SequenceConfig : RunOptions {
  std::uint32_t instances = 20;
  /// If instances >= crash_before_instance, crash `crash_process` right
  /// before that instance starts (kNoProcess = no crash).
  ProcessId crash_process = kNoProcess;
  std::uint32_t crash_before_instance = 0;
  /// Divergent proposals (one distinct value per process) or unanimous.
  bool divergent_proposals = true;
  TimePoint time_limit_ms = 600'000.0;
  std::uint64_t event_limit = 200'000'000;
};

struct InstanceStats {
  TimePoint start_time = 0.0;
  TimePoint first_decision = 0.0;  ///< relative to start_time
  TimePoint last_decision = 0.0;   ///< relative to start_time
  double mean_steps = 0.0;         ///< over round-path deciders
  bool complete = false;
  bool safe = true;
};

struct SequenceResult {
  std::vector<InstanceStats> instances;
  bool all_complete = true;
  bool all_safe = true;
};

SequenceResult run_consensus_sequence(const SequenceConfig& cfg,
                                      const SimConsensusFactory& factory);

}  // namespace zdc::sim
